//! Mesh storm: determinism and coordination quality gate for
//! `cos_core::mesh` at fleet scale.
//!
//! Two phases:
//!
//! 1. **Cross-thread determinism under churn** — builds the same fleet of
//!    cells (≥1024 stations, two sessions each: adaptive data uplink +
//!    resilient control subsession) three times and runs the identical
//!    tick schedule through [`MeshNet`] at 1, 4 and 8 engine worker
//!    threads, replacing a striped set of stations between rounds (churn:
//!    released sessions recycle through the pool, joiners get the
//!    coordination policy's admission sequence). The net's running FNV
//!    digest — every frame outcome, command issue/apply and churn event —
//!    must be byte-identical across thread counts.
//! 2. **Coordination duel** — the `fig08_mesh` sweep from
//!    `cos_experiments::mesh`: hidden-cluster cells run CoS-coordinated
//!    vs uncoordinated on paired seeds. Coordinated cells must beat the
//!    CSMA baseline on aggregate goodput while delivering ≥99 % of their
//!    control plane (scheduling commands + uplink control messages).
//!
//! Writes `BENCH_pr8.json` to the current directory and exits non-zero on
//! any determinism or duel failure. `--smoke` runs a reduced fleet (still
//! ≥1024 stations) and the quick duel config; `--cells N` / `--rounds N`
//! override the storm scale.

use std::time::Instant;

use cos_core::engine::EngineConfig;
use cos_core::mesh::{MeshConfig, MeshNet, MeshTopology};
use cos_experiments::mesh as mesh_exp;

/// Stations per cell; cells × stations is the fleet size.
const STATIONS_PER_CELL: usize = 16;

/// Cell topology for cell `ci`: hidden clusters of varying split and a
/// per-cell SNR, so the fleet is heterogeneous but fully seeded.
fn storm_topology(ci: usize) -> MeshTopology {
    let clusters = 2 + ci % 3;
    let snr_db = 16.0 + (ci % 8) as f64;
    MeshTopology::hidden_clusters(STATIONS_PER_CELL, clusters, snr_db)
}

/// Cell config for cell `ci`: three quarters coordinated, one quarter
/// CSMA baseline (uncoordinated cells must stay deterministic too).
fn storm_config(ci: usize) -> MeshConfig {
    let mut cfg = MeshConfig {
        seed: 0x4D45_5348u64.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(ci as u64),
        ..MeshConfig::default()
    };
    if ci % 4 == 3 {
        cfg.coordination = None;
    }
    cfg
}

struct StormResult {
    digest: u64,
    frames: u64,
    churns: u64,
    ticks_per_sec: f64,
}

/// One full storm at a fixed worker-thread count: identical fleet,
/// identical tick schedule, identical churn stripes.
fn run_storm(cells: usize, rounds: usize, ticks_per_round: u64, threads: usize) -> StormResult {
    let mut net = MeshNet::new(EngineConfig { threads });
    for ci in 0..cells {
        net.add_cell(storm_topology(ci), storm_config(ci));
    }
    let start = Instant::now();
    for r in 0..rounds {
        net.run(ticks_per_round);
        // Churn a stripe of the fleet: every 7th cell (phase-shifted per
        // round) replaces one station. Joiners in coordinated cells get
        // the policy's admission sequence (mute + TDMA + grant + unmute)
        // through the control plane.
        for ci in (r % 7..cells).step_by(7) {
            net.replace_station(ci, (r * 5 + ci) % STATIONS_PER_CELL);
        }
    }
    net.run(ticks_per_round);
    let elapsed = start.elapsed().as_secs_f64();
    let total_ticks = (rounds as u64 + 1) * ticks_per_round;
    let mut frames = 0u64;
    let mut churns = 0u64;
    for ci in 0..cells {
        let r = net.report(ci);
        frames += r.frames + r.beacons;
        churns += r.churns;
    }
    StormResult {
        digest: net.digest(),
        frames,
        churns,
        ticks_per_sec: total_ticks as f64 / elapsed,
    }
}

fn arg_value(name: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix(&format!("--{name}=")) {
            return Some(v.parse().unwrap_or_else(|_| panic!("--{name} takes an integer")));
        }
        if arg == &format!("--{name}") {
            let v = args.get(i + 1).unwrap_or_else(|| panic!("--{name} requires a value"));
            return Some(v.parse().unwrap_or_else(|_| panic!("--{name} takes an integer")));
        }
    }
    None
}

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // ≥1024 stations in both modes: the bar the mesh subsystem is held to.
    let cells = arg_value("cells").unwrap_or(if smoke { 64 } else { 96 });
    let rounds = arg_value("rounds").unwrap_or(if smoke { 2 } else { 4 });
    let ticks_per_round: u64 = if smoke { 4 } else { 8 };
    let stations = cells * STATIONS_PER_CELL;
    assert!(stations >= 1024, "mesh_storm must cover at least 1024 stations, got {stations}");

    eprintln!(
        "mesh_storm: {cells} cells x {STATIONS_PER_CELL} stations = {stations}, \
         {rounds}+1 rounds x {ticks_per_round} ticks, threads {THREAD_COUNTS:?}"
    );

    let storms: Vec<StormResult> =
        THREAD_COUNTS.iter().map(|&t| run_storm(cells, rounds, ticks_per_round, t)).collect();
    let deterministic = storms.iter().all(|s| s.digest == storms[0].digest);
    for (t, s) in THREAD_COUNTS.iter().zip(&storms) {
        eprintln!(
            "  threads={t}: digest {:016x}, {} frames, {} churns, {:.1} ticks/sec",
            s.digest, s.frames, s.churns, s.ticks_per_sec
        );
    }
    assert!(storms[0].churns > 0, "the storm must actually churn stations");

    let duel_cfg = if smoke { mesh_exp::Config::quick() } else { mesh_exp::Config::default() };
    let points = mesh_exp::run_sweep(&duel_cfg);
    let total = |coord: bool| {
        points.iter().filter(|p| p.coordinated == coord).map(|p| p.goodput_mbps).sum::<f64>()
    };
    let (coordinated, csma) = (total(true), total(false));
    let beats = coordinated > csma;
    let min_delivery = points
        .iter()
        .filter(|p| p.coordinated)
        .map(|p| p.control_delivery)
        .fold(f64::INFINITY, f64::min);
    let delivery_ok = min_delivery >= 0.99;
    eprintln!(
        "  duel: coordinated {coordinated:.4} Mbps vs csma {csma:.4} Mbps, \
         min control delivery {min_delivery:.4}"
    );

    if !smoke {
        let mut rows = String::new();
        for (i, p) in points.iter().enumerate() {
            rows.push_str(&format!(
                "    {{ \"stations\": {}, \"scheme\": \"{}\", \"goodput_mbps\": {:.4}, \
                 \"data_prr\": {:.4}, \"collision_rate\": {:.4}, \"control_delivery\": {:.4}, \
                 \"cmd_delivered\": {} }}{}\n",
                p.n,
                if p.coordinated { "coordinated" } else { "csma" },
                p.goodput_mbps,
                p.data_prr,
                p.collision_rate,
                p.control_delivery,
                p.cmd_delivered,
                if i + 1 == points.len() { "" } else { "," }
            ));
        }
        let json = format!(
            "{{\n  \"bench\": \"mesh_storm\",\n  \"methodology\": \"Phase 1: {cells} cells x \
             {STATIONS_PER_CELL} stations ({stations} stations, two sessions each) run the \
             identical tick schedule through MeshNet at 1/4/8 engine threads, with a station \
             churned in every 7th cell per round; the net's FNV digest over every frame outcome, \
             command and churn event must match across thread counts. Phase 2: the fig08_mesh \
             duel — hidden-cluster cells, CoS-coordinated vs CSMA on paired seeds over {} ticks x \
             {} trials; coordinated must beat CSMA on aggregate goodput with >=99% control-plane \
             delivery.\",\n  \"storm\": {{\n    \"cells\": {cells},\n    \"stations\": {stations},\n    \
             \"rounds\": {rounds},\n    \"ticks_per_round\": {ticks_per_round},\n    \
             \"frames\": {},\n    \"churns\": {},\n    \"thread_counts\": [1, 4, 8],\n    \
             \"outcome_digest\": \"{:016x}\",\n    \"deterministic_across_threads\": {deterministic},\n    \
             \"ticks_per_sec\": {{\n      \"threads_1\": {:.2},\n      \"threads_4\": {:.2},\n      \
             \"threads_8\": {:.2}\n    }}\n  }},\n  \"duel\": [\n{rows}  ],\n  \
             \"coordinated_goodput_mbps\": {coordinated:.4},\n  \"csma_goodput_mbps\": {csma:.4},\n  \
             \"coordinated_beats_csma\": {beats},\n  \"min_control_delivery\": {min_delivery:.4}\n}}\n",
            duel_cfg.ticks,
            duel_cfg.trials,
            storms[0].frames,
            storms[0].churns,
            storms[0].digest,
            storms[0].ticks_per_sec,
            storms[1].ticks_per_sec,
            storms[2].ticks_per_sec,
        );
        std::fs::write("BENCH_pr8.json", &json).expect("write BENCH_pr8.json");
        print!("{json}");
    }

    let mut failed = false;
    if !deterministic {
        eprintln!("mesh_storm FAILED: mesh digests differ across thread counts");
        failed = true;
    }
    if !beats {
        eprintln!("mesh_storm FAILED: coordinated {coordinated:.4} Mbps <= csma {csma:.4} Mbps");
        failed = true;
    }
    if !delivery_ok {
        eprintln!("mesh_storm FAILED: min control delivery {min_delivery:.4} < 0.99");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("mesh_storm passed");
}
