//! Adaptation storm: determinism and closed-loop quality gate for
//! `cos_core::adaptation` driven through the batch engine.
//!
//! Two phases:
//!
//! 1. **Cross-thread determinism under drift** — builds the same fleet of
//!    adaptive sessions three times, retargets every session's SNR along
//!    a triangle drift between rounds (the paper's coherence-time /
//!    mobility scenario), queues control messages into the adaptive ARQ,
//!    pushes the identical `submit_adaptive` schedule through
//!    [`BatchEngine`] at 1, 4 and 8 worker threads with create/release
//!    churn between rounds (recycled slots must reset adaptation state),
//!    and FNV-digests every [`AdaptiveSummary`] field (`f64`s via
//!    `to_bits`). The digests must be byte-identical.
//! 2. **Drift duel** — the `fig07_adaptation` comparison from
//!    `cos_experiments::adaptation`: the closed-loop controller vs every
//!    fixed (rate, budget) operating point on paired channel
//!    realisations. The controller must match or beat the best fixed
//!    pair's goodput while delivering 100 % of its control messages with
//!    a drained ARQ backlog.
//!
//! Writes `BENCH_pr6.json` to the current directory and exits non-zero on
//! any determinism or duel failure. `--smoke` runs a reduced fleet and
//! the quick duel config in well under 30 s; `--sessions N` /
//! `--rounds N` override the storm scale.
//!
//! Since PR 10 the engine bundles adaptive jobs into lockstep rounds
//! (batched channel impairment + lockstep Viterbi), so `--kernels
//! scalar|lanes|both` (default `both`) re-runs the determinism storm
//! under each symbol-plane kernel and asserts the digests match across
//! kernels as well as across thread counts.

use std::time::Instant;

use cos_core::adaptation::{AdaptationConfig, ProbeEvent, ProbeState, StaircaseEvent};
use cos_core::engine::{BatchEngine, EngineConfig, JobOutcome, JobResult, SessionId, SessionPool};
use cos_core::session::{AdaptiveSummary, PacketSummary, SessionConfig};
use cos_dsp::{set_kernel_mode, KernelMode};
use cos_experiments::adaptation::{self, ContenderResult, Scheme};
use cos_phy::rates::DataRate;

/// FNV-1a over the outcome stream — byte-identity proxy.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(0x1_0000_01b3);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.byte(v as u8);
    }
}

fn digest_packet(h: &mut Fnv, p: &PacketSummary) {
    h.bool(p.data_ok);
    h.bool(p.control_present);
    h.bool(p.control_ok);
    h.usize(p.silences_sent);
    h.usize(p.detection.false_positives);
    h.usize(p.detection.false_negatives);
    h.usize(p.detection.actual_silences);
    h.usize(p.detection.actual_normals);
    h.f64(p.measured_snr_db);
    h.byte(p.rate as u8);
    h.usize(p.selected_len);
    h.u64(p.selected_hash);
    h.u64(p.control_hash);
}

fn digest_adaptive(h: &mut Fnv, a: &AdaptiveSummary) {
    digest_packet(h, &a.packet);
    h.f64(a.ewma_snr_db);
    h.usize(a.budget);
    h.byte(a.rate_after as u8);
    h.usize(a.budget_after);
    h.byte(match a.search_state {
        ProbeState::Searching => 0,
        ProbeState::SearchComplete => 1,
    });
    h.byte(match a.staircase_event {
        StaircaseEvent::Hold => 0,
        StaircaseEvent::Acquire => 1,
        StaircaseEvent::Upgrade => 2,
        StaircaseEvent::Downgrade => 3,
        StaircaseEvent::Fallback => 4,
    });
    h.byte(match a.probe_event {
        ProbeEvent::Hold => 0,
        ProbeEvent::Confirmed => 1,
        ProbeEvent::Failed => 2,
        ProbeEvent::Completed => 3,
        ProbeEvent::BackedOff => 4,
        ProbeEvent::Restarted => 5,
    });
    h.bool(a.control_acked);
    h.bool(a.feedback_delivered);
}

fn digest_outcome(h: &mut Fnv, o: &JobOutcome) {
    h.usize(o.session.index());
    match &o.result {
        JobResult::Adaptive(a) => {
            h.byte(1);
            digest_adaptive(h, a);
        }
        JobResult::Plain(_) | JobResult::Resilient(_) => unreachable!("adaptive jobs only"),
        JobResult::StaleSession => h.byte(3),
    }
}

const PAYLOAD_LENS: [usize; 4] = [96, 240, 504, 1020];

fn payload_bytes(len: usize) -> Vec<u8> {
    (0..len as u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect()
}

/// Fleet mix: one third pin a rate (the staircase stays out of the way,
/// the probe search still runs), the rest run the full closed loop.
fn storm_config(i: usize) -> SessionConfig {
    SessionConfig {
        snr_db: 16.0 + (i % 10) as f64,
        rate: if i.is_multiple_of(3) { Some(DataRate::ALL[(i / 3 + i) % 8]) } else { None },
        adaptation: Some(AdaptationConfig::default()),
        ..Default::default()
    }
}

/// Per-round SNR drift: a triangle of ±4 dB around the session's base
/// SNR with an 8-round period, phase-shifted per session.
fn drift_offset_db(session: usize, round: usize) -> f64 {
    let phase = (round + session % 8) % 8;
    let tri = if phase <= 4 { phase as f64 } else { (8 - phase) as f64 };
    tri - 2.0
}

/// Deterministic 8-bit control message for one (session, round) slot.
fn message_bits(session: usize, round: usize) -> Vec<u8> {
    let x = (session as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(round as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (0..8).map(|b| ((x >> (b + 19)) & 1) as u8).collect()
}

struct StormResult {
    digest: u64,
    jobs: usize,
    frames_per_sec: f64,
}

/// One full storm at a fixed worker-thread count: identical fleet
/// construction, drift retargeting, ARQ offers, submit schedule, and
/// create/release churn every round.
fn run_storm(sessions: usize, rounds: usize, threads: usize) -> StormResult {
    let mut pool = SessionPool::with_capacity(sessions);
    let mut ids: Vec<SessionId> =
        (0..sessions).map(|i| pool.create(storm_config(i), 0xADA7 + i as u64)).collect();

    let mut engine = BatchEngine::new(EngineConfig { threads });
    let payloads: Vec<_> =
        PAYLOAD_LENS.iter().map(|&l| engine.add_payload(&payload_bytes(l))).collect();
    let mut out = Vec::new();
    let mut digest = Fnv::new();
    let mut jobs = 0usize;
    let start = Instant::now();

    for r in 0..rounds {
        // Drift + control offers happen on the pool between drains: the
        // adaptation state (controller, ARQ queue) lives *in* the session
        // and must follow it through the engine unchanged.
        for (k, &id) in ids.iter().enumerate() {
            let s = pool.get_mut(id).expect("live session");
            s.set_snr_db(16.0 + (k % 10) as f64 + drift_offset_db(k, r));
            if (k + r) % 3 == 0 && s.adaptive_backlog() == 0 {
                s.queue_adaptive_control(message_bits(k, r));
            }
        }
        for (k, &id) in ids.iter().enumerate() {
            engine.submit_adaptive(id, payloads[(k + r) % payloads.len()]);
        }
        engine.drain_into(&mut pool, &mut out);
        jobs += out.len();
        for o in &out {
            digest_outcome(&mut digest, o);
        }
        // Churn a stripe of the fleet: recycled slots must come back with
        // factory-fresh adaptation state (reinit resets the controller
        // and the ARQ queue), or the digests diverge.
        for k in (r % 13..ids.len()).step_by(13) {
            assert!(pool.release(ids[k]), "live handle released cleanly");
            ids[k] = pool.create(storm_config(k + rounds), 0xF1EE7 + (k * rounds + r) as u64);
        }
    }

    StormResult {
        digest: digest.0,
        jobs,
        frames_per_sec: jobs as f64 / start.elapsed().as_secs_f64(),
    }
}

fn contender_name(r: &ContenderResult) -> String {
    match r.scheme {
        Scheme::Adaptive => "adaptive".to_string(),
        Scheme::Fixed { rate, budget } => format!("fixed_{}mbps_b{}", rate.mbps(), budget),
    }
}

fn arg_value(name: &str) -> Option<usize> {
    arg_text(name).map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} takes an integer")))
}

fn arg_text(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix(&format!("--{name}=")) {
            return Some(v.to_string());
        }
        if arg == &format!("--{name}") {
            let v = args.get(i + 1).unwrap_or_else(|| panic!("--{name} requires a value"));
            return Some(v.to_string());
        }
    }
    None
}

fn kernel_modes(spec: &str) -> Vec<(&'static str, KernelMode)> {
    match spec {
        "scalar" => vec![("scalar", KernelMode::Scalar)],
        "lanes" => vec![("lanes", KernelMode::Lanes)],
        "both" => vec![("scalar", KernelMode::Scalar), ("lanes", KernelMode::Lanes)],
        other => panic!("--kernels takes scalar|lanes|both, got {other:?}"),
    }
}

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sessions = arg_value("sessions").unwrap_or(if smoke { 192 } else { 512 });
    let rounds = arg_value("rounds").unwrap_or(if smoke { 3 } else { 6 });
    let kernels = arg_text("kernels").unwrap_or_else(|| "both".to_string());
    let modes = kernel_modes(&kernels);

    eprintln!(
        "adaptation_storm: {sessions} sessions, {rounds} rounds, threads {THREAD_COUNTS:?}, \
         kernels {kernels}"
    );

    // One storm per (kernel, thread count); the adaptive lockstep bundles
    // must produce one digest across the whole grid.
    let mut storms: Vec<StormResult> = Vec::new();
    for &(name, mode) in &modes {
        set_kernel_mode(mode);
        for &t in &THREAD_COUNTS {
            let s = run_storm(sessions, rounds, t);
            eprintln!(
                "  kernels={name} threads={t}: digest {:016x}, {} jobs, {:.0} frames/sec",
                s.digest, s.jobs, s.frames_per_sec
            );
            storms.push(s);
        }
    }
    let deterministic = storms.iter().all(|s| s.digest == storms[0].digest);

    let duel_cfg =
        if smoke { adaptation::Config::quick() } else { adaptation::Config::default() };
    let duel = adaptation::run_compare(&duel_cfg);
    let adaptive = &duel[0];
    assert!(adaptive.scheme == Scheme::Adaptive, "adaptive contender is row 0");
    let best_fixed = duel[1..]
        .iter()
        .max_by(|a, b| a.throughput_mbps.total_cmp(&b.throughput_mbps))
        .expect("fixed grid is non-empty");
    let beats = adaptive.throughput_mbps >= best_fixed.throughput_mbps;
    let full_delivery = adaptive.control_delivery == 1.0 && adaptive.backlog == 0;
    eprintln!(
        "  duel: adaptive {:.3} Mbps (delivery {:.4}, backlog {}) vs best fixed {} at {:.3} Mbps",
        adaptive.throughput_mbps,
        adaptive.control_delivery,
        adaptive.backlog,
        contender_name(best_fixed),
        best_fixed.throughput_mbps
    );

    if !smoke {
        // Timing rows come from the last kernel mode's sweep (lanes when
        // `--kernels both`); the digest is shared by every storm anyway.
        let timed = &storms[storms.len() - THREAD_COUNTS.len()..];
        let mut rows = String::new();
        for (i, r) in duel.iter().enumerate() {
            rows.push_str(&format!(
                "    \"{}\": {{ \"throughput_mbps\": {:.4}, \"data_prr\": {:.4}, \
                 \"control_delivery\": {:.4}, \"mean_rate_mbps\": {:.2}, \"mean_budget\": {:.2} }}{}\n",
                contender_name(r),
                r.throughput_mbps,
                r.data_prr,
                r.control_delivery,
                r.mean_rate_mbps,
                r.mean_budget,
                if i + 1 == duel.len() { "" } else { "," }
            ));
        }
        let json = format!(
            "{{\n  \"bench\": \"adaptation_storm\",\n  \"methodology\": \"Phase 1: {sessions} \
             adaptive sessions x {rounds} rounds through the batch engine at 1/4/8 worker \
             threads under kernels={kernels}, with per-round triangle SNR drift, control \
             messages queued into the adaptive ARQ, and create/release churn; every \
             AdaptiveSummary field is FNV-digested (f64 via to_bits) and digests must match \
             across thread counts and kernel modes. Phase 2: the \
             fig07_adaptation drift duel — closed-loop controller vs the fixed (rate, budget) \
             grid on paired seeded channels over a {} <-> {} dB triangle, {} trials x {} \
             packets; the controller must reach best-fixed goodput with 100% control delivery \
             and a drained backlog.\",\n  \"storm\": {{\n    \"sessions\": {sessions},\n    \
             \"rounds\": {rounds},\n    \"jobs_per_storm\": {},\n    \"thread_counts\": [1, 4, 8],\n    \
             \"kernels\": \"{kernels}\",\n    \
             \"outcome_digest\": \"{:016x}\",\n    \"deterministic_across_threads_and_kernels\": {deterministic},\n    \
             \"frames_per_sec\": {{\n      \"threads_1\": {:.2},\n      \"threads_4\": {:.2},\n      \
             \"threads_8\": {:.2}\n    }}\n  }},\n  \"duel\": {{\n{rows}  }},\n  \
             \"adaptive_beats_best_fixed\": {beats},\n  \"adaptive_control_delivery\": {:.4},\n  \
             \"adaptive_residual_backlog\": {}\n}}\n",
            duel_cfg.snr_hi_db,
            duel_cfg.snr_lo_db,
            duel_cfg.trials,
            duel_cfg.packets,
            storms[0].jobs,
            storms[0].digest,
            timed[0].frames_per_sec,
            timed[1].frames_per_sec,
            timed[2].frames_per_sec,
            adaptive.control_delivery,
            adaptive.backlog,
        );
        std::fs::write("BENCH_pr6.json", &json).expect("write BENCH_pr6.json");
        print!("{json}");
    }

    let mut failed = false;
    if !deterministic {
        eprintln!(
            "adaptation_storm FAILED: outcome digests differ across thread counts or kernels"
        );
        failed = true;
    }
    if !beats {
        eprintln!(
            "adaptation_storm FAILED: adaptive {:.3} Mbps below best fixed {:.3} Mbps",
            adaptive.throughput_mbps, best_fixed.throughput_mbps
        );
        failed = true;
    }
    if !full_delivery {
        eprintln!(
            "adaptation_storm FAILED: control delivery {:.4} with backlog {} (want 1.0, 0)",
            adaptive.control_delivery, adaptive.backlog
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("adaptation_storm passed");
}
