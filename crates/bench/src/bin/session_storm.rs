//! Thousand-session batch-engine storm: determinism and allocation gate
//! for `cos_core::engine`.
//!
//! Three phases:
//!
//! 1. **Cross-thread determinism** — builds the same pool of ≥1000
//!    sessions three times, runs the identical mixed plain/resilient job
//!    schedule (with create/release churn between rounds) through
//!    [`BatchEngine`] at 1, 4 and 8 worker threads, and FNV-digests every
//!    outcome field (`f64`s via `to_bits`). The digests must be
//!    byte-identical — the engine's core contract.
//! 2. **Steady-state allocation** — a fixed-rate pool drained
//!    single-threaded under a counting global allocator; after warm-up
//!    drains every buffer has reached capacity and the measured drains
//!    must allocate **zero** times per frame.
//! 3. **Throughput** — frames/sec of the phase-1 storms per thread count.
//!
//! PR 9: the phases run once per symbol-plane kernel (`--kernels
//! scalar|lanes|both`, default `both`), and because the lane kernels are
//! bit-identical to the scalar reference the outcome digests must agree
//! across kernels as well as thread counts.
//!
//! PR 10 extends the lockstep rounds to the channel stage and to
//! resilient jobs: the engine bundles every job kind by payload length,
//! airs full rounds through `Link::transmit_batch_into`, and the digests
//! must still agree across kernels and thread counts.
//!
//! Writes `BENCH_pr10.json` to the current directory and exits non-zero
//! on any determinism or (full run) allocation failure. `--smoke` runs a
//! reduced schedule in well under 30 s and gates only determinism;
//! `--sessions N` / `--rounds N` override the scale.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cos_core::engine::{
    BatchEngine, ControlId, EngineConfig, JobOutcome, JobResult, PayloadId, SessionId, SessionPool,
};
use cos_core::session::{PacketSummary, SessionConfig};
use cos_core::LinkMode;
use cos_dsp::{set_kernel_mode, KernelMode};
use cos_phy::rates::DataRate;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn counters() -> (u64, u64) {
    (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
}

/// FNV-1a over the outcome stream — allocation-free byte-identity proxy.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(0x1_0000_01b3);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.byte(v as u8);
    }
}

fn digest_packet(h: &mut Fnv, p: &PacketSummary) {
    h.bool(p.data_ok);
    h.bool(p.control_present);
    h.bool(p.control_ok);
    h.usize(p.silences_sent);
    h.usize(p.detection.false_positives);
    h.usize(p.detection.false_negatives);
    h.usize(p.detection.actual_silences);
    h.usize(p.detection.actual_normals);
    h.f64(p.measured_snr_db);
    h.byte(p.rate as u8);
    h.usize(p.selected_len);
    h.u64(p.selected_hash);
    h.u64(p.control_hash);
}

fn digest_outcome(h: &mut Fnv, o: &JobOutcome) {
    h.usize(o.session.index());
    let mode_code = |m: LinkMode| match m {
        LinkMode::Cos => 0u8,
        LinkMode::DataOnly => 1,
        LinkMode::Probing => 2,
    };
    match &o.result {
        JobResult::Plain(p) => {
            h.byte(1);
            digest_packet(h, p);
        }
        JobResult::Resilient(r) => {
            h.byte(2);
            digest_packet(h, &r.packet);
            h.byte(mode_code(r.mode));
            h.byte(mode_code(r.mode_after));
            h.bool(r.control_attempted);
            h.bool(r.control_acked);
            h.bool(r.feedback_delivered);
            match r.phy_error {
                None => h.byte(0),
                Some(kind) => {
                    h.byte(1);
                    for b in kind.bytes() {
                        h.byte(b);
                    }
                }
            }
        }
        // The session storm submits only plain and resilient jobs; the
        // adaptive path has its own storm (`adaptation_storm`).
        JobResult::Adaptive(_) => unreachable!("session_storm submits no adaptive jobs"),
        JobResult::StaleSession => h.byte(3),
    }
}

const PAYLOAD_LENS: [usize; 4] = [96, 240, 504, 1020];
const CONTROL_LENS: [usize; 4] = [8, 12, 16, 24];

fn payload_bytes(len: usize) -> Vec<u8> {
    (0..len as u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect()
}

fn control_bits(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 5 + len).is_multiple_of(3) as u8).collect()
}

fn register_tables(engine: &mut BatchEngine) -> (Vec<PayloadId>, Vec<ControlId>) {
    let payloads = PAYLOAD_LENS.iter().map(|&l| engine.add_payload(&payload_bytes(l))).collect();
    let controls = CONTROL_LENS.iter().map(|&l| engine.add_control(&control_bits(l))).collect();
    (payloads, controls)
}

fn storm_config(i: usize) -> SessionConfig {
    SessionConfig {
        snr_db: 14.0 + (i % 12) as f64,
        // A quarter of the fleet rate-adapts; the rest pin a rate.
        rate: if i.is_multiple_of(4) { None } else { Some(DataRate::ALL[(i / 4 + i) % 8]) },
        ..Default::default()
    }
}

struct StormResult {
    digest: u64,
    jobs: usize,
    frames_per_sec: f64,
}

/// One full storm at a fixed worker-thread count: identical pool
/// construction, submit schedule, and create/release churn every round.
fn run_storm(sessions: usize, rounds: usize, threads: usize) -> StormResult {
    let mut pool = SessionPool::with_capacity(sessions);
    let mut ids: Vec<SessionId> =
        (0..sessions).map(|i| pool.create(storm_config(i), 0xC0DE + i as u64)).collect();

    let mut engine = BatchEngine::new(EngineConfig { threads });
    let (payloads, controls) = register_tables(&mut engine);
    let mut out = Vec::new();
    let mut digest = Fnv::new();
    let mut jobs = 0usize;
    let start = Instant::now();

    for r in 0..rounds {
        for (k, &id) in ids.iter().enumerate() {
            if (k + r) % 5 == 0 {
                engine.submit_resilient(id, payloads[(k + r) % payloads.len()]);
            } else {
                engine.submit(id, payloads[(k + r) % payloads.len()], controls[(k * 7 + r) % controls.len()]);
            }
        }
        engine.drain_into(&mut pool, &mut out);
        jobs += out.len();
        for o in &out {
            digest_outcome(&mut digest, o);
        }
        // Churn a stripe of the pool: released sessions become spares and
        // are immediately recycled into replacements, so later rounds run
        // on a mix of fresh and recycled sessions.
        for k in (r % 17..ids.len()).step_by(17) {
            assert!(pool.release(ids[k]), "live handle released cleanly");
            ids[k] = pool.create(storm_config(k + rounds), 0xFEED + (k * rounds + r) as u64);
        }
    }

    StormResult { digest: digest.0, jobs, frames_per_sec: jobs as f64 / start.elapsed().as_secs_f64() }
}

struct AllocResult {
    allocs_per_frame: f64,
    bytes_per_frame: f64,
    frames_per_sec: f64,
    warm_rounds: usize,
}

/// Steady-state allocation profile: fixed-rate sessions (frame geometry
/// never changes, so buffers stop growing), plain jobs only, drained
/// single-threaded (the strict zero-allocation path).
///
/// Scratch buffers grow only on per-session records (a frame detecting
/// more silences than any before on that session, say), so the tail of
/// growth events decays with warm-up depth rather than stopping at a
/// fixed round count. Warm-up is therefore adaptive: rounds run until
/// two consecutive full drains allocate nothing (capped at `max_warm`),
/// and only then does measurement start.
fn run_alloc_phase(sessions: usize, max_warm: usize, measured: usize) -> AllocResult {
    let mut pool = SessionPool::with_capacity(sessions);
    let ids: Vec<SessionId> = (0..sessions)
        .map(|i| {
            // High enough SNR that every rate decodes from the first
            // round: the CRC-gated feedback path (EVM reconstruction)
            // must run during warm-up, or its buffers would first fill on
            // a weak session's first-ever CRC pass mid-measurement.
            let config = SessionConfig {
                snr_db: 28.0 + (i % 8) as f64,
                rate: Some(DataRate::ALL[i % 8]),
                ..Default::default()
            };
            pool.create(config, 0xA110C + i as u64)
        })
        .collect();

    let mut engine = BatchEngine::new(EngineConfig { threads: 1 });
    let (payloads, controls) = register_tables(&mut engine);
    let mut out = Vec::new();
    let mut digest = Fnv::new();

    let mut round = |pool: &mut SessionPool, digest: &mut Fnv| {
        for (k, &id) in ids.iter().enumerate() {
            // Plain path only: resilient ARQ history snapshots allocate
            // by design (they outlive the frame).
            engine.submit(id, payloads[k % payloads.len()], controls[k % controls.len()]);
        }
        engine.drain_into(pool, &mut out);
        for o in &out {
            digest_outcome(digest, o);
        }
    };

    let mut warm_rounds = 0;
    let mut quiet = 0;
    while quiet < 2 && warm_rounds < max_warm {
        let before = counters().0;
        round(&mut pool, &mut digest);
        warm_rounds += 1;
        quiet = if counters().0 == before { quiet + 1 } else { 0 };
    }
    let (a0, b0) = counters();
    let start = Instant::now();
    for _ in 0..measured {
        round(&mut pool, &mut digest);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let (a1, b1) = counters();
    std::hint::black_box(digest.0);

    let frames = (sessions * measured) as f64;
    AllocResult {
        allocs_per_frame: (a1 - a0) as f64 / frames,
        bytes_per_frame: (b1 - b0) as f64 / frames,
        frames_per_sec: frames / elapsed,
        warm_rounds,
    }
}

fn arg_text(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix(&format!("--{name}=")) {
            return Some(v.to_string());
        }
        if arg == &format!("--{name}") {
            return Some(
                args.get(i + 1).unwrap_or_else(|| panic!("--{name} requires a value")).clone(),
            );
        }
    }
    None
}

fn arg_value(name: &str) -> Option<usize> {
    arg_text(name).map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} takes an integer")))
}

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

/// One kernel mode's full run: storms per thread count plus the
/// single-threaded steady-state allocation profile.
struct ModeReport {
    name: &'static str,
    storms: Vec<StormResult>,
    alloc: AllocResult,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sessions = arg_value("sessions").unwrap_or(if smoke { 1024 } else { 1536 });
    let rounds = arg_value("rounds").unwrap_or(if smoke { 2 } else { 4 });
    let (max_warm, measured) = if smoke { (4, 1) } else { (64, 3) };
    let kernels = arg_text("kernels").unwrap_or_else(|| "both".to_string());
    let modes: Vec<(&'static str, KernelMode)> = match kernels.as_str() {
        "scalar" => vec![("scalar", KernelMode::Scalar)],
        "lanes" => vec![("lanes", KernelMode::Lanes)],
        "both" => vec![("scalar", KernelMode::Scalar), ("lanes", KernelMode::Lanes)],
        other => panic!("--kernels takes scalar|lanes|both, got {other}"),
    };

    eprintln!(
        "session_storm: {sessions} sessions, {rounds} rounds, threads {THREAD_COUNTS:?}, \
         kernels {kernels}"
    );

    if std::env::args().any(|a| a == "--steady-only") {
        for &(name, mode) in &modes {
            set_kernel_mode(mode);
            let alloc = run_alloc_phase(sessions.max(1000), max_warm, measured);
            eprintln!(
                "  [{name}] steady state: {:.3} allocs/frame, {:.0} frames/sec",
                alloc.allocs_per_frame, alloc.frames_per_sec
            );
        }
        return;
    }

    let mut reports: Vec<ModeReport> = Vec::new();
    for &(name, mode) in &modes {
        // Pinned before any worker thread spawns, so every storm below
        // observes one mode for its whole run.
        set_kernel_mode(mode);
        eprintln!("  [{name}]");
        let storms: Vec<StormResult> =
            THREAD_COUNTS.iter().map(|&t| run_storm(sessions, rounds, t)).collect();
        for (t, s) in THREAD_COUNTS.iter().zip(&storms) {
            eprintln!(
                "    threads={t}: digest {:016x}, {} jobs, {:.0} frames/sec",
                s.digest, s.jobs, s.frames_per_sec
            );
        }
        let alloc = run_alloc_phase(sessions.max(1000), max_warm, measured);
        eprintln!(
            "    steady state: {:.3} allocs/frame, {:.1} bytes/frame, {:.0} frames/sec \
             ({} warm rounds)",
            alloc.allocs_per_frame, alloc.bytes_per_frame, alloc.frames_per_sec, alloc.warm_rounds
        );
        reports.push(ModeReport { name, storms, alloc });
    }

    // Bit-identity contract: the digest must agree across *kernels* as
    // well as thread counts.
    let reference = reports[0].storms[0].digest;
    let deterministic = reports.iter().all(|r| r.storms.iter().all(|s| s.digest == reference));

    if !smoke {
        let mode_section = |r: &ModeReport| {
            format!(
                "{{\n    \"frames_per_sec\": {{\n      \"threads_1\": {:.2},\n      \"threads_4\": {:.2},\n      \"threads_8\": {:.2}\n    }},\n    \"steady_state\": {{\n      \"warm_rounds\": {},\n      \"allocs_per_frame\": {:.4},\n      \"bytes_per_frame\": {:.1},\n      \"frames_per_sec\": {:.2}\n    }}\n  }}",
                r.storms[0].frames_per_sec,
                r.storms[1].frames_per_sec,
                r.storms[2].frames_per_sec,
                r.alloc.warm_rounds,
                r.alloc.allocs_per_frame,
                r.alloc.bytes_per_frame,
                r.alloc.frames_per_sec,
            )
        };
        let sections: String = reports
            .iter()
            .map(|r| format!("  \"{}\": {},\n", r.name, mode_section(r)))
            .collect();
        let speedup = if reports.len() == 2 {
            let s = &reports[0];
            let l = &reports[1];
            format!(
                "  \"lanes_vs_scalar\": {{\n    \"threads_1\": {:.3},\n    \"threads_4\": {:.3},\n    \"threads_8\": {:.3},\n    \"steady_state\": {:.3}\n  }},\n",
                l.storms[0].frames_per_sec / s.storms[0].frames_per_sec,
                l.storms[1].frames_per_sec / s.storms[1].frames_per_sec,
                l.storms[2].frames_per_sec / s.storms[2].frames_per_sec,
                l.alloc.frames_per_sec / s.alloc.frames_per_sec,
            )
        } else {
            String::new()
        };
        let json = format!(
            "{{\n  \"bench\": \"session_storm\",\n  \"sessions\": {sessions},\n  \"rounds\": {rounds},\n  \"jobs_per_storm\": {},\n  \"thread_counts\": [1, 4, 8],\n  \"steady_state_sessions\": {},\n  \"outcome_digest\": \"{:016x}\",\n  \"deterministic_across_threads_and_kernels\": {deterministic},\n{sections}{speedup}  \"crc_note\": \"digests cover every outcome field; equal digests mean byte-identical results\"\n}}\n",
            reports[0].storms[0].jobs,
            sessions.max(1000),
            reference,
        );
        std::fs::write("BENCH_pr10.json", &json).expect("write BENCH_pr10.json");
        print!("{json}");
    }

    let mut failed = false;
    if !deterministic {
        eprintln!("session_storm FAILED: outcome digests differ across thread counts or kernels");
        failed = true;
    }
    if !smoke {
        for r in &reports {
            if r.alloc.allocs_per_frame > 0.0 {
                eprintln!(
                    "session_storm FAILED: [{}] {:.4} allocs/frame at steady state (want 0)",
                    r.name, r.alloc.allocs_per_frame
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("session_storm passed");
}
