//! Service-layer chaos storm: the injected-fault proof for
//! `cos_core::service`.
//!
//! Four phases:
//!
//! 1. **Deterministic chaos** — an identical scripted schedule of
//!    submissions, cancellations, queue-overflow bursts, poison jobs,
//!    worker stalls (short ones that recover, long ones the watchdog
//!    quarantines), session release/recreate churn, and a drain-under-load
//!    finish, run through [`ServiceCore`] at 1, 4 and 8 engine threads.
//!    Gates: outcome digests byte-identical across thread counts, **zero
//!    lost or duplicated tickets**, the stats ledger balances, every
//!    rejection type was exercised, and memory stayed bounded (queue
//!    high-water ≤ capacity, dead-letter queue ≤ capacity).
//! 2. **Journal replay** — the same storm with journaling on; the sealed
//!    journal is serialized, deserialized, and replayed at 1/4/8 threads.
//!    Gates: byte-exact serialize→deserialize round-trip and replay
//!    digests equal to the live digest at every thread count.
//! 3. **Live async chaos** — a journaled [`CosService`] with concurrent
//!    producer threads racing admission against the worker's pumps
//!    (a genuinely nondeterministic interleaving), plus injected faults.
//!    Gates: every accepted ticket resolves exactly once, graceful drain
//!    completes, and the journal replays the live run bit-exactly at
//!    1/4/8 threads.
//! 4. **Throughput** — jobs/sec of the phase-1 storms per thread count.
//!
//! Writes `BENCH_pr7.json` on full runs and exits non-zero on any gate
//! failure. `--smoke` runs a reduced schedule (well under 30 s) and
//! gates everything except the JSON artifact; `--sessions N` /
//! `--rounds N` override the scale.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use cos_core::engine::EngineConfig;
use cos_core::service::journal::ReplayJournal;
use cos_core::service::{
    CosService, Rejected, ServiceConfig, ServiceCore, ServiceJobKind, ServiceStats, Ticket,
};
use cos_core::session::SessionConfig;
use cos_core::{AdaptationConfig, ResilienceConfig};
use cos_phy::rates::DataRate;

const PAYLOAD_LENS: [usize; 4] = [96, 240, 504, 1020];
const CONTROL_LENS: [usize; 4] = [8, 12, 16, 24];

fn payload_bytes(len: usize) -> Vec<u8> {
    (0..len as u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect()
}

fn control_bits(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 5 + len).is_multiple_of(3) as u8).collect()
}

fn storm_session_config(i: usize) -> SessionConfig {
    SessionConfig {
        snr_db: 14.0 + (i % 12) as f64,
        rate: if i.is_multiple_of(4) { None } else { Some(DataRate::ALL[(i / 4 + i) % 8]) },
        resilience: if i % 3 == 1 { Some(ResilienceConfig::default()) } else { None },
        adaptation: if i % 3 == 2 { Some(AdaptationConfig::default()) } else { None },
        ..Default::default()
    }
}

fn storm_service_config(threads: usize) -> ServiceConfig {
    ServiceConfig {
        queue_capacity: 64,
        session_quota: 6,
        max_inflight: 256,
        deadline_ticks: 12,
        retry_budget: 2,
        retry_backoff_cap: 4,
        stall_ticks: 3,
        dead_letter_capacity: 32,
        batch_limit: 24,
        engine: EngineConfig { threads },
        ..Default::default()
    }
}

struct StormOutput {
    digest: u64,
    admitted: Vec<Ticket>,
    resolved: Vec<Ticket>,
    stats: ServiceStats,
    dead_letters: usize,
    jobs_per_sec: f64,
    journal: Option<ReplayJournal>,
}

/// One scripted chaos storm. Every decision (fault injection, cancel,
/// pump cadence, churn) is a pure function of deterministic counters, so
/// two runs differing only in `threads` execute the identical event
/// sequence — which is exactly what the cross-thread digest gate needs.
fn run_scripted_storm(
    sessions: usize,
    rounds: usize,
    threads: usize,
    journaled: bool,
) -> StormOutput {
    let cfg = storm_service_config(threads);
    let mut core =
        if journaled { ServiceCore::with_journal(cfg) } else { ServiceCore::new(cfg) };

    let mut ids: Vec<_> = (0..sessions)
        .map(|i| core.create_session(storm_session_config(i), 0xC0DE + i as u64))
        .collect();
    let payloads: Vec<_> =
        PAYLOAD_LENS.iter().map(|&l| core.add_payload(&payload_bytes(l))).collect();
    let controls: Vec<_> =
        CONTROL_LENS.iter().map(|&l| core.add_control(&control_bits(l))).collect();

    let mut admitted: Vec<Ticket> = Vec::new();
    let start = Instant::now();

    for r in 0..rounds {
        for k in 0..sessions {
            // Fault the *next* ticket before submitting it: poison every
            // 23rd admission, stall every 31st for 1–5 ticks (1–3 recover
            // inside the watchdog's patience of 3; 4–5 get quarantined).
            let next = core.stats().admitted;
            if next % 23 == 7 {
                core.inject_poison(next);
            }
            if next % 31 == 11 {
                core.inject_stall(next, 1 + (next % 5) as u32);
            }
            let kind = match (k + r) % 3 {
                0 => ServiceJobKind::Plain(controls[(k * 7 + r) % controls.len()]),
                1 => ServiceJobKind::Resilient,
                _ => ServiceJobKind::Adaptive,
            };
            if let Ok(t) = core.try_submit(ids[k], payloads[(k + r) % payloads.len()], kind) {
                if t.value() % 29 == 13 {
                    core.cancel(t);
                }
                admitted.push(t);
            }
            if (k + r).is_multiple_of(9) {
                core.pump();
            }
        }
        // Quota burst: hammer one session far past its in-flight cap so
        // SessionQuota rejections are exercised deterministically.
        let hot = ids[r % sessions];
        for _ in 0..10 {
            if let Ok(t) = core.try_submit(hot, payloads[0], ServiceJobKind::Resilient) {
                admitted.push(t);
            }
        }
        // Overflow flood: one job to every session with no pump in
        // between. The bounded queue fills at its capacity and the rest
        // get the typed QueueFull rejection — memory stays bounded no
        // matter how hard the callers push.
        for k in 0..sessions {
            if let Ok(t) =
                core.try_submit(ids[k], payloads[k % payloads.len()], ServiceJobKind::Adaptive)
            {
                admitted.push(t);
            }
        }
        // Churn: release one session (queued jobs resolve StaleSession)
        // and replace it — the service must keep accounting straight
        // across generations.
        let victim = r % sessions;
        core.release_session(ids[victim]);
        ids[victim] = core.create_session(storm_session_config(victim + rounds), 0xFEED + r as u64);
        core.pump();
    }

    // Drain under load: stop admission while work is still queued, prove
    // the typed rejection, then let everything finish.
    core.begin_drain();
    let refused = core.try_submit(ids[0], payloads[0], ServiceJobKind::Resilient);
    assert_eq!(refused, Err(Rejected::Draining));
    core.run_to_drained();
    let elapsed = start.elapsed().as_secs_f64();

    let stats = core.stats();
    let resolved = core.outcomes().iter().map(|o| o.ticket).collect();
    StormOutput {
        digest: core.digest(),
        resolved,
        stats,
        dead_letters: core.dead_letters().count(),
        jobs_per_sec: stats.completed as f64 / elapsed,
        journal: core.seal_journal(),
        admitted,
    }
}

/// Gates shared by every scripted storm: exactly-once resolution, a
/// balanced ledger, exercised rejection paths, bounded memory.
fn check_storm(out: &StormOutput, label: &str) -> bool {
    let mut ok = true;
    let mut fail = |msg: String| {
        eprintln!("service_storm FAILED [{label}]: {msg}");
        ok = false;
    };

    let admitted: BTreeSet<u64> = out.admitted.iter().map(|t| t.value()).collect();
    let resolved: Vec<u64> = out.resolved.iter().map(|t| t.value()).collect();
    let resolved_set: BTreeSet<u64> = resolved.iter().copied().collect();
    if resolved.len() != resolved_set.len() {
        fail(format!("{} duplicated outcomes", resolved.len() - resolved_set.len()));
    }
    if resolved_set != admitted {
        fail(format!(
            "lost/phantom tickets: {} admitted vs {} resolved",
            admitted.len(),
            resolved_set.len()
        ));
    }

    let s = out.stats;
    if s.admitted
        != s.completed + s.expired + s.cancelled + s.quarantined_poison + s.quarantined_stall
    {
        fail("stats ledger does not balance".into());
    }
    if s.engine_jobs != s.completed {
        fail(format!(
            "engine capacity leak: {} engine jobs vs {} completed",
            s.engine_jobs, s.completed
        ));
    }
    if s.quarantined_poison == 0 || s.retries == 0 {
        fail("poison path not exercised".into());
    }
    if s.stalls_injected == 0 || s.stall_recoveries == 0 || s.watchdog_trips == 0 {
        fail("stall/watchdog paths not exercised".into());
    }
    if s.cancelled == 0 {
        fail("cancel path not exercised".into());
    }
    if s.rejected_queue_full == 0 || s.rejected_session_quota == 0 || s.rejected_draining == 0 {
        fail(format!(
            "rejection paths not all exercised (queue_full {}, quota {}, draining {})",
            s.rejected_queue_full, s.rejected_session_quota, s.rejected_draining
        ));
    }
    if s.max_queue_depth > 64 {
        fail(format!("queue exceeded its bound: high-water {}", s.max_queue_depth));
    }
    if s.max_inflight > 256 {
        fail(format!("in-flight exceeded its bound: high-water {}", s.max_inflight));
    }
    if out.dead_letters > 32 {
        fail(format!("dead-letter queue exceeded its bound: {}", out.dead_letters));
    }
    ok
}

struct LiveOutput {
    accepted: usize,
    rejected_after_retries: usize,
    digest: u64,
    stats: ServiceStats,
    journal: ReplayJournal,
    wall_trips: u64,
}

/// Live async chaos: real producer threads race the worker's pump loop,
/// so the admission interleaving is genuinely nondeterministic — the
/// journal must capture it well enough to replay bit-exactly.
fn run_live_storm(producers: usize, per_producer: usize, threads: usize) -> LiveOutput {
    let svc = Arc::new(CosService::start_with_journal(storm_service_config(threads)));
    let (ids, payloads, controls) = svc.with_core(|core| {
        let ids: Vec<_> = (0..8)
            .map(|i| core.create_session(storm_session_config(i), 0x11FE + i as u64))
            .collect();
        let payloads: Vec<_> =
            PAYLOAD_LENS.iter().map(|&l| core.add_payload(&payload_bytes(l))).collect();
        let controls: Vec<_> =
            CONTROL_LENS.iter().map(|&l| core.add_control(&control_bits(l))).collect();
        // Faults land on whatever jobs happen to win those admission
        // slots — the journal records the tickets, so replay agrees.
        for t in [5, 17, 29, 41, 53] {
            core.inject_poison(t);
        }
        for (t, d) in [(8, 2), (19, 5), (33, 1)] {
            core.inject_stall(t, d);
        }
        (ids, payloads, controls)
    });

    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let svc = Arc::clone(&svc);
            let ids = ids.clone();
            let payloads = payloads.clone();
            let controls = controls.clone();
            std::thread::spawn(move || {
                let mut accepted = Vec::new();
                let mut gave_up = 0usize;
                for j in 0..per_producer {
                    let session = ids[(p * 31 + j) % ids.len()];
                    let kind = match (p + j) % 3 {
                        0 => ServiceJobKind::Plain(controls[j % controls.len()]),
                        1 => ServiceJobKind::Resilient,
                        _ => ServiceJobKind::Adaptive,
                    };
                    let payload = payloads[(p + j) % payloads.len()];
                    // The typed rejection IS the backpressure: the caller
                    // holds the job and retries with a yield.
                    let mut tries = 0;
                    loop {
                        match svc.submit(session, payload, kind) {
                            Ok(t) => {
                                if t.value() % 37 == 3 {
                                    svc.cancel(t);
                                }
                                accepted.push(t);
                                break;
                            }
                            Err(Rejected::Draining) => unreachable!("drain starts after join"),
                            Err(_) if tries < 50_000 => {
                                tries += 1;
                                std::thread::yield_now();
                            }
                            Err(_) => {
                                gave_up += 1;
                                break;
                            }
                        }
                    }
                }
                (accepted, gave_up)
            })
        })
        .collect();

    let mut accepted: Vec<Ticket> = Vec::new();
    let mut gave_up = 0usize;
    for h in handles {
        let (a, g) = h.join().expect("producer panicked");
        accepted.extend(a);
        gave_up += g;
    }

    let svc = Arc::try_unwrap(svc).ok().expect("producers joined");
    let wall_trips = svc.watchdog_wall_trips();
    let mut core = svc.drain();

    // Zero loss under a live interleaving: every accepted ticket resolved
    // exactly once.
    let accepted_set: BTreeSet<u64> = accepted.iter().map(|t| t.value()).collect();
    let resolved: Vec<u64> = core.outcomes().iter().map(|o| o.ticket.value()).collect();
    let resolved_set: BTreeSet<u64> = resolved.iter().copied().collect();
    assert_eq!(resolved.len(), resolved_set.len(), "live run duplicated outcomes");
    assert_eq!(resolved_set, accepted_set, "live run lost tickets");

    LiveOutput {
        accepted: accepted.len(),
        rejected_after_retries: gave_up,
        digest: core.digest(),
        stats: core.stats(),
        journal: core.seal_journal().expect("journaling was on"),
        wall_trips,
    }
}

fn arg_value(name: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix(&format!("--{name}=")) {
            return Some(v.parse().unwrap_or_else(|_| panic!("--{name} takes an integer")));
        }
        if arg == &format!("--{name}") {
            let v = args.get(i + 1).unwrap_or_else(|| panic!("--{name} requires a value"));
            return Some(v.parse().unwrap_or_else(|_| panic!("--{name} takes an integer")));
        }
    }
    None
}

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sessions = arg_value("sessions").unwrap_or(if smoke { 96 } else { 192 });
    let rounds = arg_value("rounds").unwrap_or(if smoke { 3 } else { 5 });
    let (producers, per_producer) = if smoke { (3, 40) } else { (4, 150) };
    let mut failed = false;

    eprintln!("service_storm: {sessions} sessions, {rounds} rounds, threads {THREAD_COUNTS:?}");

    // Phase 1: deterministic chaos across thread counts.
    let storms: Vec<StormOutput> = THREAD_COUNTS
        .iter()
        .map(|&t| run_scripted_storm(sessions, rounds, t, false))
        .collect();
    for (t, s) in THREAD_COUNTS.iter().zip(&storms) {
        eprintln!(
            "  threads={t}: digest {:016x}, {} admitted, {} completed, {} expired, {} cancelled, \
             {} poison-quarantined, {} watchdog-quarantined, {:.0} jobs/sec",
            s.digest,
            s.stats.admitted,
            s.stats.completed,
            s.stats.expired,
            s.stats.cancelled,
            s.stats.quarantined_poison,
            s.stats.quarantined_stall,
            s.jobs_per_sec
        );
        if !check_storm(s, &format!("threads={t}")) {
            failed = true;
        }
    }
    let deterministic = storms.iter().all(|s| s.digest == storms[0].digest);
    if !deterministic {
        eprintln!("service_storm FAILED: outcome digests differ across thread counts");
        failed = true;
    }

    // Phase 2: journal replay byte-identity for the scripted storm.
    let journaled = run_scripted_storm(sessions, rounds, 2, true);
    let journal = journaled.journal.as_ref().expect("journaling was on");
    let bytes = journal.serialize();
    let decoded = ReplayJournal::deserialize(&bytes).expect("journal decodes");
    if decoded.serialize() != bytes {
        eprintln!("service_storm FAILED: journal serialize→deserialize not byte-exact");
        failed = true;
    }
    let mut scripted_replays = Vec::new();
    for &t in &THREAD_COUNTS {
        let report = decoded.replay(t);
        eprintln!(
            "  journal replay threads={t}: {:016x} (live {:016x}) — {}",
            report.replay_digest,
            journaled.digest,
            if report.matches() { "match" } else { "MISMATCH" }
        );
        if !report.matches() {
            eprintln!("service_storm FAILED: scripted replay diverged at {t} threads");
            failed = true;
        }
        scripted_replays.push(report.matches());
    }
    if journaled.digest != storms[1].digest {
        // threads=2 journaled run vs threads=4 plain run: same script, so
        // same digest — journaling itself must not perturb outcomes.
        eprintln!("service_storm FAILED: journaled run digest differs from plain run");
        failed = true;
    }

    // Phase 3: live async chaos with replay.
    let live = run_live_storm(producers, per_producer, 2);
    let live_bytes = live.journal.serialize();
    let live_decoded = ReplayJournal::deserialize(&live_bytes).expect("live journal decodes");
    let mut live_replays = Vec::new();
    for &t in &THREAD_COUNTS {
        let report = live_decoded.replay(t);
        if !report.matches() {
            eprintln!("service_storm FAILED: live replay diverged at {t} threads");
            failed = true;
        }
        live_replays.push(report.matches());
    }
    eprintln!(
        "  live: {} accepted ({} gave up), digest {:016x}, {} pumps, {} wall trips, replay {:?}",
        live.accepted,
        live.rejected_after_retries,
        live.digest,
        live.stats.pumps,
        live.wall_trips,
        live_replays
    );
    if live.stats.completed + live.stats.expired + live.stats.cancelled
        + live.stats.quarantined_poison
        + live.stats.quarantined_stall
        != live.stats.admitted
    {
        eprintln!("service_storm FAILED: live stats ledger does not balance");
        failed = true;
    }

    if !smoke {
        let s = &storms[0].stats;
        let json = format!(
            "{{\n  \"bench\": \"service_storm\",\n  \"sessions\": {sessions},\n  \"rounds\": {rounds},\n  \"thread_counts\": [1, 4, 8],\n  \"outcome_digest\": \"{:016x}\",\n  \"deterministic_across_threads\": {deterministic},\n  \"scripted\": {{\n    \"admitted\": {},\n    \"completed\": {},\n    \"expired\": {},\n    \"cancelled\": {},\n    \"quarantined_poison\": {},\n    \"quarantined_stall\": {},\n    \"retries\": {},\n    \"stall_recoveries\": {},\n    \"watchdog_trips\": {},\n    \"rejected_queue_full\": {},\n    \"rejected_session_quota\": {},\n    \"rejected_draining\": {},\n    \"max_queue_depth\": {},\n    \"max_inflight\": {}\n  }},\n  \"jobs_per_sec\": {{\n    \"threads_1\": {:.2},\n    \"threads_4\": {:.2},\n    \"threads_8\": {:.2}\n  }},\n  \"journal\": {{\n    \"events\": {},\n    \"bytes\": {},\n    \"roundtrip_byte_exact\": true,\n    \"scripted_replay_matches\": {:?},\n    \"live_replay_matches\": {:?}\n  }},\n  \"live\": {{\n    \"producers\": {producers},\n    \"jobs_per_producer\": {per_producer},\n    \"accepted\": {},\n    \"rejected_after_retries\": {},\n    \"admitted\": {},\n    \"completed\": {}\n  }}\n}}\n",
            storms[0].digest,
            s.admitted,
            s.completed,
            s.expired,
            s.cancelled,
            s.quarantined_poison,
            s.quarantined_stall,
            s.retries,
            s.stall_recoveries,
            s.watchdog_trips,
            s.rejected_queue_full,
            s.rejected_session_quota,
            s.rejected_draining,
            s.max_queue_depth,
            s.max_inflight,
            storms[0].jobs_per_sec,
            storms[1].jobs_per_sec,
            storms[2].jobs_per_sec,
            decoded.len(),
            bytes.len(),
            scripted_replays,
            live_replays,
            live.accepted,
            live.rejected_after_retries,
            live.stats.admitted,
            live.stats.completed,
        );
        std::fs::write("BENCH_pr7.json", &json).expect("write BENCH_pr7.json");
        print!("{json}");
    }

    if failed {
        std::process::exit(1);
    }
    eprintln!("service_storm passed");
}
