//! Allocation and throughput gate for the zero-copy workspace pipeline.
//!
//! Runs the same end-to-end chain (build frame → indoor channel →
//! front end → decode) twice: once through the owned, allocating APIs
//! and once through the `*_into` workspace pipeline, under a counting
//! global allocator. Also profiles the streaming receive path
//! (`receive_stream` vs `receive_stream_into`, which must be
//! allocation-free at steady state), the resilient session path
//! (`send_packet_resilient` vs the `_summary` variant), and the transmit
//! control path (`build_frame` + `PowerController::embed` +
//! `to_time_samples` vs `build_frame_into` + `embed_into` + `render`,
//! which must also be allocation-free at steady state). Writes the
//! comparison to `BENCH_pr4.json` in the current directory and, with
//! `--check`, exits non-zero unless the workspace path allocates at most
//! a tenth of what the owned path does per frame (the PR 4 acceptance
//! floor), the streaming workspace rx and the embedding workspace tx
//! paths allocate nothing per frame, and the resilient summary path
//! allocates strictly less than the report-building one.
//!
//! PR 9 adds a batched-decode phase: `RxPipeline::decode_batch_into`
//! over a full lane group with a reused [`SymbolBatch`] must also be
//! allocation-free at steady state (and decode the same frames as the
//! per-frame `decode_into` loop it replaces).
//!
//! PR 10 adds a channel-batch phase: `Link::transmit_batch_into` over a
//! full lane group of same-length waveforms with a reused
//! [`ChannelBatch`] (the engine's lockstep impair path) must be
//! allocation-free at steady state, gated against the per-frame
//! `transmit_into` loop it batches.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cos_bench::bench_payload;
use cos_channel::{BatchFrame, ChannelBatch, ChannelConfig, Link};
use cos_core::session::{CosSession, SessionConfig};
use cos_core::PowerController;
use cos_dsp::lanes::LANES;
use cos_dsp::{Complex, KernelMode};
use cos_fec::SymbolBatch;
use cos_phy::rates::DataRate;
use cos_phy::rx::{Receiver, RxConfig};
use cos_phy::tx::Transmitter;
use cos_phy::{PhyWorkspace, RxBatchFrame, RxPipeline, TxPipeline};

/// Forwards to the system allocator while counting every allocation
/// (alloc + realloc) and the bytes requested.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static TRACE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

thread_local! {
    static IN_TRACE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn trace_alloc(size: usize) {
    if !TRACE.load(Ordering::Relaxed) {
        return;
    }
    IN_TRACE.with(|c| {
        if !c.get() {
            c.set(true);
            let bt = std::backtrace::Backtrace::force_capture();
            eprintln!("ALLOC {size} bytes at:\n{bt}");
            c.set(false);
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        trace_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn counters() -> (u64, u64) {
    (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
}

const WARMUP_FRAMES: usize = 4;
const MEASURED_FRAMES: usize = 40;
const SNR_DB: f64 = 20.0;

struct Measurement {
    allocs_per_frame: f64,
    bytes_per_frame: f64,
    frames_per_sec: f64,
    crc_ok: usize,
}

/// Runs `frames` iterations of `step` after a warmup, returning the
/// per-frame allocation profile and throughput.
fn measure(mut step: impl FnMut() -> bool) -> Measurement {
    for _ in 0..WARMUP_FRAMES {
        black_box(step());
    }
    let (a0, b0) = counters();
    let start = Instant::now();
    let mut crc_ok = 0usize;
    for _ in 0..MEASURED_FRAMES {
        if black_box(step()) {
            crc_ok += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let (a1, b1) = counters();
    Measurement {
        allocs_per_frame: (a1 - a0) as f64 / MEASURED_FRAMES as f64,
        bytes_per_frame: (b1 - b0) as f64 / MEASURED_FRAMES as f64,
        frames_per_sec: MEASURED_FRAMES as f64 / elapsed,
        crc_ok,
    }
}

fn run_owned() -> Measurement {
    let payload = bench_payload();
    let mut link = Link::new(ChannelConfig::default(), SNR_DB, 42);
    let tx = Transmitter::new();
    let rx = Receiver::new();
    measure(|| {
        let frame = tx.build_frame(&payload, DataRate::Mbps24, 0x5D);
        let rx_samples = link.transmit(&frame.to_time_samples());
        match rx.receive(&rx_samples, &RxConfig::ideal()) {
            Ok(decoded) => decoded.crc_ok(),
            Err(_) => false,
        }
    })
}

fn run_workspace() -> Measurement {
    let payload = bench_payload();
    let mut link = Link::new(ChannelConfig::default(), SNR_DB, 42);
    let tx = TxPipeline::new();
    let rx = RxPipeline::new();
    let mut ws = PhyWorkspace::new();
    measure(move || {
        tx.build_and_render(&payload, DataRate::Mbps24, 0x5D, &mut ws.tx);
        link.transmit_into(&ws.tx.samples, &mut ws.rx.samples);
        let cos_phy::RxWorkspace { samples, fe, scratch, out, .. } = &mut ws.rx;
        match rx.receiver().front_end_into(samples, fe) {
            Ok(()) => {
                rx.receiver().decode_into(fe, None, scratch, out);
                out.crc_ok
            }
            Err(_) => false,
        }
    })
}

/// Idle samples before the frame in the streaming-rx scenarios, so the
/// synchroniser genuinely has to find the preamble.
const STREAM_PAD: usize = 96;

fn run_stream_owned() -> Measurement {
    let payload = bench_payload();
    let mut link = Link::new(ChannelConfig::default(), SNR_DB, 42);
    let tx = Transmitter::new();
    let rx = Receiver::new();
    measure(|| {
        let frame = tx.build_frame(&payload, DataRate::Mbps24, 0x5D);
        let rx_samples = link.transmit(&frame.to_time_samples());
        let mut stream = vec![Complex::ZERO; STREAM_PAD];
        stream.extend_from_slice(&rx_samples);
        match rx.receive_stream(&stream, &RxConfig::ideal()) {
            Ok((_, decoded)) => decoded.crc_ok(),
            Err(_) => false,
        }
    })
}

fn run_stream_workspace() -> Measurement {
    let payload = bench_payload();
    let mut link = Link::new(ChannelConfig::default(), SNR_DB, 42);
    let tx = TxPipeline::new();
    let rx = RxPipeline::new();
    let mut ws = PhyWorkspace::new();
    let mut stream: Vec<Complex> = Vec::new();
    measure(move || {
        tx.build_and_render(&payload, DataRate::Mbps24, 0x5D, &mut ws.tx);
        link.transmit_into(&ws.tx.samples, &mut ws.rx.samples);
        stream.clear();
        stream.resize(STREAM_PAD, Complex::ZERO);
        stream.extend_from_slice(&ws.rx.samples);
        match rx.receiver().receive_stream_into(&stream, &RxConfig::ideal(), &mut ws.rx) {
            Ok(_) => ws.rx.out.crc_ok,
            Err(_) => false,
        }
    })
}

/// Control subcarriers and bits for the tx+embed scenarios (the same
/// shape the power-controller unit tests use).
const EMBED_SELECTED: [usize; 6] = [3, 11, 19, 27, 35, 43];
const EMBED_BITS: [u8; 8] = [1, 0, 1, 1, 0, 1, 0, 0];

fn run_embed_owned() -> Measurement {
    let payload = bench_payload();
    let tx = Transmitter::new();
    let pc = PowerController::default();
    measure(|| {
        let mut frame = tx.build_frame(&payload, DataRate::Mbps24, 0x5D);
        let positions = pc.embed(&mut frame, &EMBED_SELECTED, &EMBED_BITS).expect("fits");
        let samples = frame.to_time_samples();
        !positions.is_empty() && !samples.is_empty()
    })
}

fn run_embed_workspace() -> Measurement {
    let payload = bench_payload();
    let txp = TxPipeline::new();
    let pc = PowerController::default();
    let mut ws = PhyWorkspace::new();
    let mut positions: Vec<usize> = Vec::new();
    measure(move || {
        txp.transmitter().build_frame_into(&payload, DataRate::Mbps24, 0x5D, &mut ws.tx);
        pc.embed_into(&mut ws.tx.frame, &EMBED_SELECTED, &EMBED_BITS, &mut positions)
            .expect("fits");
        let n = ws.tx.render().len();
        !positions.is_empty() && n > 0
    })
}

/// Shared setup for the batched-decode scenarios: `LANES` frames carried
/// through distinct channel realisations and front-ended once into their
/// own workspaces. The decode stage then re-runs repeatedly over the
/// frozen front ends, which is exactly the shape of an engine drain.
fn batch_workspaces() -> Vec<PhyWorkspace> {
    let payload = bench_payload();
    let mut link = Link::new(ChannelConfig::default(), SNR_DB, 42);
    let tx = TxPipeline::new();
    let rx = RxPipeline::new();
    let mut wss: Vec<PhyWorkspace> = (0..LANES).map(|_| PhyWorkspace::new()).collect();
    for ws in wss.iter_mut() {
        tx.build_and_render(&payload, DataRate::Mbps24, 0x5D, &mut ws.tx);
        link.transmit_into(&ws.tx.samples, &mut ws.rx.samples);
        let cos_phy::RxWorkspace { samples, fe, .. } = &mut ws.rx;
        rx.receiver().front_end_into(samples, fe).expect("clean front end");
    }
    wss
}

/// Per-frame reference: a plain `decode_into` loop over the lane group.
fn run_batch_decode_per_frame() -> Measurement {
    let rx = RxPipeline::new();
    let mut wss = batch_workspaces();
    measure(move || {
        let mut ok = true;
        for ws in wss.iter_mut() {
            let cos_phy::RxWorkspace { fe, scratch, out, .. } = &mut ws.rx;
            rx.receiver().decode_into(fe, None, scratch, out);
            ok &= out.crc_ok;
        }
        ok
    })
}

/// Batched path: one `decode_batch_into` call per step, lane frames built
/// on the stack and the `SymbolBatch` staging buffer reused throughout.
fn run_batch_decode_lockstep() -> Measurement {
    let rx = RxPipeline::new();
    let mut wss = batch_workspaces();
    let mut batch = SymbolBatch::new();
    measure(move || {
        let mut it = wss.iter_mut().map(|ws| {
            let cos_phy::RxWorkspace { fe, scratch, out, .. } = &mut ws.rx;
            RxBatchFrame::new(&*fe, None, scratch, out)
        });
        let mut frames: [RxBatchFrame<'_>; LANES] =
            std::array::from_fn(|_| it.next().expect("LANES workspaces"));
        rx.decode_batch_into(&mut frames, &mut batch);
        frames.iter().all(|f| f.out.crc_ok)
    })
}

/// Shared setup for the channel-batch scenarios: a full lane group of
/// links with distinct seeds carrying the same rendered waveform shape —
/// the exact situation the engine's batched-air stage hands to
/// `Link::transmit_batch_into`.
fn channel_batch_setup() -> (Vec<Link>, Vec<Vec<Complex>>, Vec<Vec<Complex>>) {
    let payload = bench_payload();
    let tx = TxPipeline::new();
    let mut ws = PhyWorkspace::new();
    let links: Vec<Link> = (0..LANES)
        .map(|k| Link::new(ChannelConfig::default(), SNR_DB, 42 + k as u64))
        .collect();
    let txs: Vec<Vec<Complex>> = (0..LANES)
        .map(|_| {
            tx.build_and_render(&payload, DataRate::Mbps24, 0x5D, &mut ws.tx);
            ws.tx.samples.clone()
        })
        .collect();
    let rxs = vec![Vec::new(); LANES];
    (links, txs, rxs)
}

/// Per-frame reference: a plain `transmit_into` loop over the lane group.
fn run_channel_per_frame() -> Measurement {
    let (mut links, txs, mut rxs) = channel_batch_setup();
    measure(move || {
        for ((link, tx), rx) in links.iter_mut().zip(&txs).zip(rxs.iter_mut()) {
            link.transmit_into(tx, rx);
        }
        rxs.iter().all(|rx| !rx.is_empty())
    })
}

/// Lockstep path: one `transmit_batch_into` call per step with the
/// `ChannelBatch` SoA staging reused throughout.
fn run_channel_lockstep() -> Measurement {
    let (mut links, txs, mut rxs) = channel_batch_setup();
    let mut scratch = ChannelBatch::default();
    measure(move || {
        let mut it = links
            .iter_mut()
            .zip(txs.iter())
            .zip(rxs.iter_mut())
            .map(|((link, tx), rx)| (link, tx.as_slice(), rx));
        let mut frames: [Option<BatchFrame<'_>>; LANES] = std::array::from_fn(|_| it.next());
        Link::transmit_batch_into_with(&mut frames, KernelMode::Lanes, &mut scratch);
        rxs.iter().all(|rx| !rx.is_empty())
    })
}

fn resilient_session() -> CosSession {
    CosSession::new(SessionConfig { snr_db: SNR_DB, ..Default::default() }, 42)
}

fn run_resilient_report() -> Measurement {
    let payload = bench_payload();
    let mut session = resilient_session();
    measure(move || session.send_packet_resilient(&payload).packet.data_ok)
}

fn run_resilient_summary() -> Measurement {
    let payload = bench_payload();
    let mut session = resilient_session();
    measure(move || session.send_packet_resilient_summary(&payload).packet.data_ok)
}

/// Prints per-stage allocation counts for one frame on a warmed-up
/// workspace — a debugging aid for chasing stray per-frame allocations.
fn profile_stages() {
    let payload = bench_payload();
    let mut link = Link::new(ChannelConfig::default(), SNR_DB, 42);
    let tx = TxPipeline::new();
    let rx = RxPipeline::new();
    let mut ws = PhyWorkspace::new();
    let mut stage = |name: &str, f: &mut dyn FnMut(&mut PhyWorkspace, &mut Link)| {
        let (a0, b0) = counters();
        f(&mut ws, &mut link);
        let (a1, b1) = counters();
        eprintln!("{name:>12}: {} allocs, {} bytes", a1 - a0, b1 - b0);
    };
    IN_TRACE.with(|c| c.set(c.get()));
    for round in 0..2 {
        TRACE.store(round == 1 && std::env::var_os("ALLOC_GATE_TRACE").is_some(), Ordering::Relaxed);
        eprintln!("--- frame {round} ---");
        stage("build", &mut |ws, _| {
            tx.build_and_render(&payload, DataRate::Mbps24, 0x5D, &mut ws.tx)
        });
        stage("channel", &mut |ws, link| {
            link.transmit_into(&ws.tx.samples, &mut ws.rx.samples)
        });
        stage("front_end", &mut |ws, _| {
            let cos_phy::RxWorkspace { samples, fe, .. } = &mut ws.rx;
            rx.receiver().front_end_into(samples, fe).expect("clean");
        });
        stage("decode", &mut |ws, _| {
            let cos_phy::RxWorkspace { fe, scratch, out, .. } = &mut ws.rx;
            rx.receiver().decode_into(fe, None, scratch, out);
        });
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    if std::env::args().any(|a| a == "--profile") {
        profile_stages();
        return;
    }

    let owned = run_owned();
    let workspace = run_workspace();
    let stream_owned = run_stream_owned();
    let stream_workspace = run_stream_workspace();
    let resilient_report = run_resilient_report();
    let resilient_summary = run_resilient_summary();
    let embed_owned = run_embed_owned();
    let embed_workspace = run_embed_workspace();
    let batch_per_frame = run_batch_decode_per_frame();
    let batch_lockstep = run_batch_decode_lockstep();
    let channel_per_frame = run_channel_per_frame();
    let channel_lockstep = run_channel_lockstep();

    assert_eq!(
        owned.crc_ok, workspace.crc_ok,
        "owned and workspace paths decoded different frame counts"
    );
    assert_eq!(
        stream_owned.crc_ok, stream_workspace.crc_ok,
        "owned and workspace streaming paths decoded different frame counts"
    );
    assert_eq!(
        resilient_report.crc_ok, resilient_summary.crc_ok,
        "resilient report and summary paths decoded different frame counts"
    );
    assert_eq!(
        embed_owned.crc_ok, embed_workspace.crc_ok,
        "owned and workspace tx+embed paths built different frame counts"
    );
    assert_eq!(
        batch_per_frame.crc_ok, batch_lockstep.crc_ok,
        "per-frame and lockstep batched decodes disagree on CRC outcomes"
    );
    assert_eq!(
        channel_per_frame.crc_ok, channel_lockstep.crc_ok,
        "per-frame and lockstep channel paths disagree on impaired outputs"
    );

    // With a fully allocation-free workspace path the ratio is reported
    // against a 1-alloc floor, i.e. "at least N× fewer".
    let alloc_ratio = owned.allocs_per_frame / workspace.allocs_per_frame.max(1.0);
    let speedup = workspace.frames_per_sec / owned.frames_per_sec;
    let stream_ratio = stream_owned.allocs_per_frame / stream_workspace.allocs_per_frame.max(1.0);
    let embed_ratio = embed_owned.allocs_per_frame / embed_workspace.allocs_per_frame.max(1.0);

    let section = |m: &Measurement| {
        format!(
            "{{\n    \"allocs_per_frame\": {:.2},\n    \"bytes_per_frame\": {:.0},\n    \"frames_per_sec\": {:.2}\n  }}",
            m.allocs_per_frame, m.bytes_per_frame, m.frames_per_sec,
        )
    };
    let batch_speedup = batch_lockstep.frames_per_sec / batch_per_frame.frames_per_sec;
    let channel_speedup = channel_lockstep.frames_per_sec / channel_per_frame.frames_per_sec;
    let json = format!(
        "{{\n  \"bench\": \"alloc_gate\",\n  \"frames\": {MEASURED_FRAMES},\n  \"payload_bytes\": 1020,\n  \"rate\": \"Mbps24\",\n  \"snr_db\": {SNR_DB},\n  \"owned\": {},\n  \"workspace\": {},\n  \"stream_owned\": {},\n  \"stream_workspace\": {},\n  \"resilient_report\": {},\n  \"resilient_summary\": {},\n  \"embed_owned\": {},\n  \"embed_workspace\": {},\n  \"batch_decode_per_frame\": {},\n  \"batch_decode_lockstep\": {},\n  \"channel_per_frame\": {},\n  \"channel_lockstep\": {},\n  \"alloc_reduction\": {:.1},\n  \"rx_chain_speedup\": {:.3},\n  \"stream_alloc_reduction\": {:.1},\n  \"embed_alloc_reduction\": {:.1},\n  \"batch_decode_speedup\": {:.3},\n  \"channel_batch_speedup\": {:.3},\n  \"crc_ok_frames\": {}\n}}\n",
        section(&owned),
        section(&workspace),
        section(&stream_owned),
        section(&stream_workspace),
        section(&resilient_report),
        section(&resilient_summary),
        section(&embed_owned),
        section(&embed_workspace),
        section(&batch_per_frame),
        section(&batch_lockstep),
        section(&channel_per_frame),
        section(&channel_lockstep),
        alloc_ratio,
        speedup,
        stream_ratio,
        embed_ratio,
        batch_speedup,
        channel_speedup,
        owned.crc_ok,
    );
    std::fs::write("BENCH_pr4.json", &json).expect("write BENCH_pr4.json");
    print!("{json}");

    if check {
        let mut failures = Vec::new();
        if alloc_ratio < 10.0 && speedup < 1.5 {
            failures.push(format!(
                "alloc reduction {alloc_ratio:.1}x (< 10x) and rx speedup {speedup:.3}x (< 1.5x)"
            ));
        }
        if stream_workspace.allocs_per_frame > 0.0 {
            failures.push(format!(
                "streaming workspace rx allocates {:.2}/frame (want 0)",
                stream_workspace.allocs_per_frame
            ));
        }
        if embed_workspace.allocs_per_frame > 0.0 {
            failures.push(format!(
                "tx+embed workspace path allocates {:.2}/frame (want 0)",
                embed_workspace.allocs_per_frame
            ));
        }
        if batch_lockstep.allocs_per_frame > 0.0 {
            failures.push(format!(
                "batched lockstep decode allocates {:.2}/batch (want 0)",
                batch_lockstep.allocs_per_frame
            ));
        }
        if channel_lockstep.allocs_per_frame > 0.0 {
            failures.push(format!(
                "lockstep channel impair path allocates {:.2}/batch (want 0)",
                channel_lockstep.allocs_per_frame
            ));
        }
        if resilient_summary.allocs_per_frame >= resilient_report.allocs_per_frame {
            failures.push(format!(
                "resilient summary path allocates {:.2}/frame, not below the report path's {:.2}",
                resilient_summary.allocs_per_frame, resilient_report.allocs_per_frame
            ));
        }
        if !failures.is_empty() {
            eprintln!("alloc gate FAILED: {}", failures.join("; "));
            std::process::exit(1);
        }
        eprintln!(
            "alloc gate passed: {alloc_ratio:.1}x fewer allocs, {speedup:.3}x rx speedup, \
             streaming rx 0 allocs/frame, tx+embed 0 allocs/frame ({embed_ratio:.1}x fewer), \
             batched decode 0 allocs/batch ({batch_speedup:.3}x vs per-frame), \
             channel batch 0 allocs/batch ({channel_speedup:.3}x vs per-frame), \
             resilient summary {:.2} vs report {:.2} allocs/frame",
            resilient_summary.allocs_per_frame, resilient_report.allocs_per_frame
        );
    }
}
