//! Quick wall-clock profile of the workspace rx chain, stage by stage —
//! plus per-kernel micro-benches for the two lane-structured stages: the
//! Viterbi ACS (scalar / lanes / lockstep, ns per trellis step) and the
//! channel impair path (scalar / lanes, ns per sample through
//! `Link::transmit_into`). `--json` prints the same numbers as a JSON
//! object on stdout for machine consumption; the human-readable table
//! always goes to stderr.

use std::time::Instant;

use cos_bench::bench_payload;
use cos_channel::{ChannelConfig, Link};
use cos_core::session::{CosSession, SessionConfig};
use cos_dsp::{set_kernel_mode, KernelMode};
use cos_fec::{LaneFrame, SymbolBatch, ViterbiDecoder};
use cos_phy::rates::DataRate;
use cos_phy::{PhyWorkspace, RxPipeline, TxPipeline};

fn main() {
    let json_out = std::env::args().any(|a| a == "--json");
    let payload = bench_payload();
    let mut link = Link::new(ChannelConfig::default(), 20.0, 42);
    let tx = TxPipeline::new();
    let rx = RxPipeline::new();
    let mut ws = PhyWorkspace::new();
    let n = 200;

    let mut t_build = 0.0;
    let mut t_chan = 0.0;
    let mut t_fe = 0.0;
    let mut t_dec = 0.0;
    for _ in 0..n {
        let t0 = Instant::now();
        tx.build_and_render(&payload, DataRate::Mbps24, 0x5D, &mut ws.tx);
        let t1 = Instant::now();
        link.transmit_into(&ws.tx.samples, &mut ws.rx.samples);
        let t2 = Instant::now();
        let cos_phy::RxWorkspace { samples, fe, scratch, out, .. } = &mut ws.rx;
        rx.receiver().front_end_into(samples, fe).expect("clean");
        let t3 = Instant::now();
        rx.receiver().decode_into(fe, None, scratch, out);
        let t4 = Instant::now();
        t_build += (t1 - t0).as_secs_f64();
        t_chan += (t2 - t1).as_secs_f64();
        t_fe += (t3 - t2).as_secs_f64();
        t_dec += (t4 - t3).as_secs_f64();
    }
    let tot = t_build + t_chan + t_fe + t_dec;
    eprintln!("build    {:7.2} ms ({:4.1}%)", t_build * 1e3, 100.0 * t_build / tot);
    eprintln!("channel  {:7.2} ms ({:4.1}%)", t_chan * 1e3, 100.0 * t_chan / tot);
    eprintln!("frontend {:7.2} ms ({:4.1}%)", t_fe * 1e3, 100.0 * t_fe / tot);
    eprintln!("decode   {:7.2} ms ({:4.1}%)", t_dec * 1e3, 100.0 * t_dec / tot);
    eprintln!("total/frame {:.3} ms", tot * 1e3 / n as f64);

    // Full session path for comparison.
    let mut session = CosSession::new(
        SessionConfig { snr_db: 28.0, rate: Some(DataRate::Mbps24), ..Default::default() },
        7,
    );
    let control: Vec<u8> = (0..16).map(|i| (i % 3 == 0) as u8).collect();
    for _ in 0..20 {
        session.send_packet_summary(&payload, &control);
    }
    let t0 = Instant::now();
    for _ in 0..n {
        session.send_packet_summary(&payload, &control);
    }
    let session_ms = t0.elapsed().as_secs_f64() * 1e3 / n as f64;
    eprintln!("session/frame {session_ms:.3} ms");

    // Channel kernel micro-bench: the full impair path (conv + faults +
    // AWGN) over the rendered frame, per kernel, in ns per tx sample.
    // Same link seed per mode — the kernels are bit-identical, so both
    // modes process identical waveforms and draw counts.
    let tx_samples = ws.tx.samples.len();
    let mut chan_ns: Vec<(&str, f64)> = Vec::new();
    for (name, mode) in [("scalar", KernelMode::Scalar), ("lanes", KernelMode::Lanes)] {
        set_kernel_mode(mode);
        let mut link = Link::new(ChannelConfig::default(), 20.0, 42);
        for _ in 0..20 {
            link.transmit_into(&ws.tx.samples, &mut ws.rx.samples);
        }
        let t0 = Instant::now();
        for _ in 0..n {
            link.transmit_into(&ws.tx.samples, &mut ws.rx.samples);
        }
        let ns = t0.elapsed().as_secs_f64() * 1e9 / (n * tx_samples) as f64;
        eprintln!("channel {name:>7}: {ns:6.2} ns/sample");
        chan_ns.push((name, ns));
    }
    set_kernel_mode(KernelMode::Lanes);

    // Viterbi kernel micro-bench: one 8192-step frame.
    let steps = 8192usize;
    let llrs: Vec<f64> = (0..steps * 2)
        .map(|i| ((i as f64 * 0.7).sin() * 3.0 * 1000.0).round() / 1000.0)
        .collect();
    let dec = ViterbiDecoder::new();
    let mut prev = vec![0u64; steps];
    let mut out = vec![0u8; steps];
    let mut vit_ns: Vec<(&str, f64)> = Vec::new();
    for (name, mode) in [("scalar", KernelMode::Scalar), ("lanes", KernelMode::Lanes)] {
        let t0 = Instant::now();
        for _ in 0..20 {
            dec.decode_to_slices_with(&llrs, true, mode, &mut prev, &mut out);
        }
        let ns = t0.elapsed().as_secs_f64() * 1e9 / (20 * steps) as f64;
        eprintln!("viterbi {name:>7}: {ns:6.1} ns/step");
        vit_ns.push((name, ns));
    }
    let mut prevs: Vec<Vec<u64>> = (0..cos_dsp::lanes::LANES).map(|_| vec![0u64; steps]).collect();
    let mut outs: Vec<Vec<u8>> = (0..cos_dsp::lanes::LANES).map(|_| vec![0u8; steps]).collect();
    let mut batch = SymbolBatch::new();
    let t0 = Instant::now();
    for _ in 0..20 {
        let mut frames: Vec<LaneFrame<'_>> = prevs
            .iter_mut()
            .zip(outs.iter_mut())
            .map(|(p, o)| LaneFrame { llrs: &llrs, prev_lsbs: p, out: o })
            .collect();
        dec.decode_lockstep(&mut frames, true, &mut batch);
    }
    let lockstep_ns = t0.elapsed().as_secs_f64() * 1e9 / (20 * cos_dsp::lanes::LANES * steps) as f64;
    eprintln!("viterbi lockstep: {lockstep_ns:6.1} ns/step (per frame)");
    vit_ns.push(("lockstep", lockstep_ns));

    if json_out {
        let chan_rows: Vec<String> = chan_ns
            .iter()
            .map(|(name, ns)| format!("    \"{name}\": {ns:.3}"))
            .collect();
        let vit_rows: Vec<String> = vit_ns
            .iter()
            .map(|(name, ns)| format!("    \"{name}\": {ns:.3}"))
            .collect();
        println!(
            "{{\n  \"bench\": \"stage_profile\",\n  \"frames\": {n},\n  \
             \"stages_ms\": {{\n    \"build\": {:.3},\n    \"channel\": {:.3},\n    \
             \"frontend\": {:.3},\n    \"decode\": {:.3}\n  }},\n  \
             \"total_ms_per_frame\": {:.4},\n  \"session_ms_per_frame\": {session_ms:.4},\n  \
             \"channel_ns_per_sample\": {{\n{}\n  }},\n  \
             \"channel_lanes_speedup\": {:.3},\n  \
             \"viterbi_ns_per_step\": {{\n{}\n  }}\n}}",
            t_build * 1e3,
            t_chan * 1e3,
            t_fe * 1e3,
            t_dec * 1e3,
            tot * 1e3 / n as f64,
            chan_rows.join(",\n"),
            chan_ns[0].1 / chan_ns[1].1,
            vit_rows.join(",\n"),
        );
    }
}
