//! CoS-specific benchmarks: silence embedding, energy detection, coherent
//! validation and a full session packet.

use cos_bench::{bench_frame, bench_rx_samples};
use cos_core::energy_detector::EnergyDetector;
use cos_core::interval::IntervalCodec;
use cos_core::power_controller::PowerController;
use cos_core::session::{CosSession, SessionConfig};
use cos_core::validation::validate_silences;
use cos_phy::rx::Receiver;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cos(c: &mut Criterion) {
    let selected = vec![4usize, 12, 20, 28, 36, 44];
    let bits: Vec<u8> = (0..40).map(|i| ((i * 5) % 3 == 0) as u8).collect();

    c.bench_function("interval_encode_40_bits", |b| {
        let codec = IntervalCodec::default();
        b.iter(|| black_box(codec.encode(black_box(&bits))))
    });

    c.bench_function("embed_control_message", |b| {
        let controller = PowerController::default();
        b.iter(|| {
            let mut frame = bench_frame();
            black_box(controller.embed(&mut frame, &selected, &bits).expect("fits"))
        })
    });

    let samples = bench_rx_samples();
    let receiver = Receiver::new();
    let fe = receiver.front_end(&samples).expect("front end");

    c.bench_function("energy_detect_frame", |b| {
        let detector = EnergyDetector::default();
        b.iter(|| black_box(detector.detect(black_box(&fe), &selected)))
    });

    c.bench_function("coherent_validation_frame", |b| {
        let reference = bench_frame().mapped_points;
        b.iter(|| black_box(validate_silences(black_box(&fe), &selected, &reference)))
    });

    c.bench_function("session_full_packet", |b| {
        let mut session = CosSession::new(SessionConfig { snr_db: 20.0, ..Default::default() }, 1);
        let payload = vec![0xA5u8; 800];
        b.iter(|| black_box(session.send_packet(black_box(&payload), &bits[..16])))
    });
}

criterion_group!(benches, bench_cos);
criterion_main!(benches);
