//! FFT micro-benchmarks: the OFDM hot path.

use cos_dsp::fft::Fft;
use cos_dsp::Complex;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let plan = Fft::new(64);
    let input: Vec<Complex> = (0..64)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.73).cos()))
        .collect();

    c.bench_function("fft64_forward", |b| {
        b.iter(|| {
            let mut buf = input.clone();
            plan.forward(black_box(&mut buf));
            black_box(buf[0])
        })
    });

    c.bench_function("fft64_inverse", |b| {
        b.iter(|| {
            let mut buf = input.clone();
            plan.inverse(black_box(&mut buf));
            black_box(buf[0])
        })
    });

    c.bench_function("fft64_plan_construction", |b| {
        b.iter(|| black_box(Fft::new(64)))
    });
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
