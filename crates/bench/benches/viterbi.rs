//! Viterbi decoding benchmarks: plain soft decoding, erasure decoding and
//! the punctured rates.

use cos_fec::{CodeRate, ConvEncoder, ViterbiDecoder};
use criterion::{criterion_group, criterion_main, Criterion, Throughput, BenchmarkId};
use std::hint::black_box;

fn make_llrs(bits: usize, seed: u64) -> Vec<f64> {
    let mut data: Vec<u8> = (0..bits)
        .map(|i| (((i as u64).wrapping_mul(seed) >> 13) & 1) as u8)
        .collect();
    data.extend_from_slice(&[0; 6]);
    ConvEncoder::new()
        .encode(&data)
        .iter()
        .map(|&b| if b == 0 { 1.0 } else { -1.0 })
        .collect()
}

fn bench_viterbi(c: &mut Criterion) {
    let mut group = c.benchmark_group("viterbi");
    for &bits in &[1000usize, 8214] {
        let llrs = make_llrs(bits, 0x9E3779B97F4A7C15);
        group.throughput(Throughput::Elements(bits as u64));
        group.bench_with_input(BenchmarkId::new("soft_decode", bits), &llrs, |b, llrs| {
            b.iter(|| black_box(ViterbiDecoder::new().decode(black_box(llrs), true)))
        });

        // Erasure Viterbi decoding: 5 % of bits erased.
        let mut erased = llrs.clone();
        for i in (0..erased.len()).step_by(20) {
            erased[i] = 0.0;
        }
        group.bench_with_input(BenchmarkId::new("erasure_decode", bits), &erased, |b, llrs| {
            b.iter(|| black_box(ViterbiDecoder::new().decode(black_box(llrs), true)))
        });
    }
    group.finish();

    c.bench_function("conv_encode_8214_bits", |b| {
        let data: Vec<u8> = (0..8214).map(|i| ((i * 7) % 3 == 0) as u8).collect();
        b.iter(|| black_box(ConvEncoder::new().encode(black_box(&data))))
    });

    c.bench_function("puncture_depuncture_3_4", |b| {
        let coded = vec![0u8; 16428];
        b.iter(|| {
            let tx = CodeRate::ThreeQuarters.puncture(black_box(&coded));
            let soft: Vec<f64> = tx.iter().map(|&x| if x == 0 { 1.0 } else { -1.0 }).collect();
            black_box(CodeRate::ThreeQuarters.depuncture(&soft))
        })
    });
}

criterion_group!(benches, bench_viterbi);
criterion_main!(benches);
