//! Full PHY chain benchmarks: frame build, waveform render, channel,
//! front end and decode — the cost of one 1024-byte packet at 24 Mbps.

use cos_bench::{bench_frame, bench_payload, bench_rx_samples};
use cos_phy::rates::DataRate;
use cos_phy::rx::{Receiver, RxConfig};
use cos_phy::tx::Transmitter;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_phy(c: &mut Criterion) {
    let payload = bench_payload();
    let mut group = c.benchmark_group("phy_chain");
    group.throughput(Throughput::Bytes(payload.len() as u64));

    group.bench_function("tx_build_frame_24mbps", |b| {
        b.iter(|| black_box(Transmitter::new().build_frame(black_box(&payload), DataRate::Mbps24, 0x5D)))
    });

    let frame = bench_frame();
    group.bench_function("tx_render_waveform", |b| {
        b.iter(|| black_box(frame.to_time_samples()))
    });

    let samples = bench_rx_samples();
    let receiver = Receiver::new();
    group.bench_function("rx_front_end", |b| {
        b.iter(|| black_box(receiver.front_end(black_box(&samples)).expect("front end")))
    });

    let fe = receiver.front_end(&samples).expect("front end");
    group.bench_function("rx_decode", |b| {
        b.iter(|| black_box(receiver.decode(black_box(&fe), None)))
    });

    group.bench_function("rx_receive_end_to_end", |b| {
        b.iter(|| black_box(receiver.receive(black_box(&samples), &RxConfig::ideal()).expect("rx")))
    });
    group.finish();
}

criterion_group!(benches, bench_phy);
criterion_main!(benches);
