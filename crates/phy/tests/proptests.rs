//! Property-based tests for the 802.11a PHY, including the malformed-input
//! properties the resilience layer depends on: any byte stream into the
//! receive chain or the SIGNAL parser must produce a typed error or a
//! correct frame — never a panic and never a false CRC pass.

use cos_phy::constellation::Modulation;
use cos_phy::frame::{build_data_field, decode_data_field, extract_payload, payload_to_psdu};
use cos_phy::ofdm::{FreqSymbol, OfdmEngine};
use cos_phy::rates::DataRate;
use cos_phy::rx::{Receiver, RxConfig};
use cos_phy::signal::parse_signal_slice;
use cos_phy::tx::Transmitter;
use cos_dsp::Complex;
use proptest::prelude::*;

fn arb_modulation() -> impl Strategy<Value = Modulation> {
    proptest::sample::select(Modulation::ALL.to_vec())
}

fn arb_rate() -> impl Strategy<Value = DataRate> {
    proptest::sample::select(DataRate::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn map_demap_is_identity(m in arb_modulation(), idx in 0usize..64) {
        let n = m.bits_per_symbol();
        let idx = idx % m.points_count();
        let bits: Vec<u8> = (0..n).map(|i| ((idx >> (n - 1 - i)) & 1) as u8).collect();
        prop_assert_eq!(m.hard_demap(m.map(&bits)), bits);
    }

    #[test]
    fn soft_demap_sign_matches_hard_decision(
        m in arb_modulation(),
        re in -1.5f64..1.5,
        im in -1.5f64..1.5,
    ) {
        // For any received point, the per-bit LLR sign must agree with the
        // nearest-point hard decision (max-log consistency).
        let y = Complex::new(re, im);
        let hard = m.hard_demap(y);
        let mut llrs = Vec::new();
        m.soft_demap(y, 1.0, &mut llrs);
        for (i, (&b, &l)) in hard.iter().zip(&llrs).enumerate() {
            if l != 0.0 {
                prop_assert_eq!(b, (l < 0.0) as u8, "bit {} of {:?} at {}", i, m, y);
            }
        }
    }

    #[test]
    fn ofdm_roundtrip_arbitrary_points(seed in any::<u64>(), polarity in prop_oneof![Just(1i8), Just(-1i8)]) {
        let mut x = seed | 1;
        let points: Vec<Complex> = (0..48).map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            Complex::new(((x >> 32) as i32 as f64) / (1u64 << 31) as f64,
                         ((x & 0xFFFF_FFFF) as i32 as f64) / (1u64 << 31) as f64)
        }).collect();
        let engine = OfdmEngine::new();
        let sym = FreqSymbol::assemble(&points, polarity);
        let rx = engine.demodulate(&engine.modulate(&sym));
        for (a, b) in sym.0.iter().zip(rx.0.iter()) {
            prop_assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn data_field_roundtrip_any_payload(
        payload in proptest::collection::vec(any::<u8>(), 1..300),
        rate in arb_rate(),
        seed in 1u8..0x80,
    ) {
        let psdu = payload_to_psdu(&payload);
        let df = build_data_field(&psdu, rate, seed);
        let llrs: Vec<f64> = df.interleaved.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect();
        let decoded = decode_data_field(&llrs, rate, psdu.len()).expect("decodes");
        prop_assert_eq!(decoded.scrambler_seed, seed);
        prop_assert_eq!(extract_payload(&decoded.bits, psdu.len()), Some(payload));
    }

    #[test]
    fn frame_survives_scattered_erasures(
        payload in proptest::collection::vec(any::<u8>(), 50..200),
        stride in 25usize..60,
    ) {
        let rate = DataRate::Mbps24;
        let psdu = payload_to_psdu(&payload);
        let df = build_data_field(&psdu, rate, 0x5D);
        let mut llrs: Vec<f64> = df.interleaved.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect();
        for i in (0..llrs.len()).step_by(stride) {
            llrs[i] = 0.0;
        }
        let decoded = decode_data_field(&llrs, rate, psdu.len()).expect("decodes");
        prop_assert_eq!(extract_payload(&decoded.bits, psdu.len()), Some(payload));
    }

    #[test]
    fn airtime_monotonically_decreases_with_rate(bytes in 1usize..2000) {
        let times: Vec<f64> = DataRate::ALL.iter().map(|r| r.frame_airtime_us(bytes)).collect();
        for w in times.windows(2) {
            prop_assert!(w[1] <= w[0], "faster rate must not take longer: {:?}", times);
        }
    }

    #[test]
    fn signal_parser_never_panics_on_arbitrary_bits(
        bits in proptest::collection::vec(0u8..2, 0..40),
    ) {
        // Any bit vector: a typed error, or a sane (rate, length) pair.
        match parse_signal_slice(&bits) {
            Ok((rate, len)) => {
                prop_assert!(DataRate::ALL.contains(&rate));
                prop_assert!(len <= 0xFFF);
            }
            Err(e) => {
                let _ = e.kind(); // every error carries a stable label
            }
        }
    }

    #[test]
    fn rx_chain_survives_arbitrary_sample_streams(
        bytes in proptest::collection::vec(any::<u8>(), 0..800),
    ) {
        // Raw garbage in: the full receive chain must return a typed error
        // or a frame that failed its CRC — never panic, never a false pass.
        let samples: Vec<Complex> = bytes
            .chunks(2)
            .map(|c| {
                let re = (c[0] as f64 - 127.5) / 127.5;
                let im = (*c.get(1).unwrap_or(&0) as f64 - 127.5) / 127.5;
                Complex::new(re, im)
            })
            .collect();
        match Receiver::new().receive(&samples, &RxConfig::ideal()) {
            Ok(frame) => prop_assert!(!frame.crc_ok(), "garbage must not pass CRC"),
            Err(e) => {
                let _ = e.kind();
            }
        }
    }

    #[test]
    fn rx_chain_survives_truncated_frames(
        payload in proptest::collection::vec(any::<u8>(), 10..120),
        keep_permille in 0usize..1000,
    ) {
        // A legitimate frame cut off mid-air at any point: typed error or
        // an honest CRC verdict.
        let frame = Transmitter::new().build_frame(&payload, DataRate::Mbps24, 0x5D);
        let mut samples = frame.to_time_samples();
        let keep = samples.len() * keep_permille / 1000;
        samples.truncate(keep);
        match Receiver::new().receive(&samples, &RxConfig::ideal()) {
            Ok(frame) => {
                if frame.crc_ok() {
                    // Only possible when enough samples survived to carry
                    // the whole frame.
                    prop_assert_eq!(frame.payload.as_deref(), Some(&payload[..]));
                }
            }
            Err(e) => {
                let _ = e.kind();
            }
        }
    }

    #[test]
    fn rx_chain_survives_bit_flipped_frames(
        payload in proptest::collection::vec(any::<u8>(), 10..120),
        stride in 1usize..200,
        phase in 0usize..50,
    ) {
        // Sample-level corruption (sign flips every `stride` samples): the
        // chain must not panic, and a CRC pass implies the exact payload.
        let frame = Transmitter::new().build_frame(&payload, DataRate::Mbps12, 0x31);
        let mut samples = frame.to_time_samples();
        let mut i = phase;
        while i < samples.len() {
            samples[i] = -samples[i];
            i += stride;
        }
        match Receiver::new().receive(&samples, &RxConfig::ideal()) {
            Ok(frame) => {
                if frame.crc_ok() {
                    prop_assert_eq!(frame.payload.as_deref(), Some(&payload[..]));
                }
            }
            Err(e) => {
                let _ = e.kind();
            }
        }
    }

    #[test]
    fn truncated_llrs_never_panic_the_data_field_decoder(
        payload in proptest::collection::vec(any::<u8>(), 1..100),
        keep_permille in 0usize..1000,
        rate in arb_rate(),
    ) {
        let psdu = payload_to_psdu(&payload);
        let df = build_data_field(&psdu, rate, 0x5D);
        let llrs: Vec<f64> =
            df.interleaved.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect();
        let keep = llrs.len() * keep_permille / 1000;
        // Any truncation: Ok with honest bits, or a typed error — no panic.
        if let Err(e) = decode_data_field(&llrs[..keep], rate, psdu.len()) {
            let _ = e.kind();
        }
    }
}
