//! The eight IEEE 802.11a data rates and SNR-based rate adaptation.
//!
//! A data rate is a (modulation, code-rate) combination (Clause 17.3.2.2).
//! Rate adaptation follows the SNR-threshold scheme the paper adopts from
//! Holland et al. \[6\]: the receiver reports a measured SNR and the sender
//! picks the fastest rate whose *minimum required SNR* it clears. The
//! minimum-SNR column is calibrated against this simulator (see
//! [`DataRate::min_snr_db`]) and lands within ~1 dB of the paper's anchor
//! (24 Mbps → 12 dB) and of common 802.11a link-abstraction tables; these
//! thresholds delimit the six operating bands of the paper's Fig. 9.

use crate::constellation::Modulation;
use cos_fec::CodeRate;

/// An 802.11a data rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataRate {
    /// 6 Mbps — BPSK, rate 1/2.
    Mbps6,
    /// 9 Mbps — BPSK, rate 3/4.
    Mbps9,
    /// 12 Mbps — QPSK, rate 1/2.
    Mbps12,
    /// 18 Mbps — QPSK, rate 3/4.
    Mbps18,
    /// 24 Mbps — 16QAM, rate 1/2.
    Mbps24,
    /// 36 Mbps — 16QAM, rate 3/4.
    Mbps36,
    /// 48 Mbps — 64QAM, rate 2/3.
    Mbps48,
    /// 54 Mbps — 64QAM, rate 3/4.
    Mbps54,
}

impl DataRate {
    /// All rates, slowest first.
    pub const ALL: [DataRate; 8] = [
        DataRate::Mbps6,
        DataRate::Mbps9,
        DataRate::Mbps12,
        DataRate::Mbps18,
        DataRate::Mbps24,
        DataRate::Mbps36,
        DataRate::Mbps48,
        DataRate::Mbps54,
    ];

    /// The six rates the paper's Fig. 9 sweeps (12–54 Mbps).
    pub const FIG9_RATES: [DataRate; 6] = [
        DataRate::Mbps12,
        DataRate::Mbps18,
        DataRate::Mbps24,
        DataRate::Mbps36,
        DataRate::Mbps48,
        DataRate::Mbps54,
    ];

    /// Nominal bit rate in Mbps.
    pub fn mbps(self) -> u32 {
        match self {
            DataRate::Mbps6 => 6,
            DataRate::Mbps9 => 9,
            DataRate::Mbps12 => 12,
            DataRate::Mbps18 => 18,
            DataRate::Mbps24 => 24,
            DataRate::Mbps36 => 36,
            DataRate::Mbps48 => 48,
            DataRate::Mbps54 => 54,
        }
    }

    /// The subcarrier modulation.
    pub fn modulation(self) -> Modulation {
        match self {
            DataRate::Mbps6 | DataRate::Mbps9 => Modulation::Bpsk,
            DataRate::Mbps12 | DataRate::Mbps18 => Modulation::Qpsk,
            DataRate::Mbps24 | DataRate::Mbps36 => Modulation::Qam16,
            DataRate::Mbps48 | DataRate::Mbps54 => Modulation::Qam64,
        }
    }

    /// The convolutional code rate.
    pub fn code_rate(self) -> CodeRate {
        match self {
            DataRate::Mbps6 | DataRate::Mbps12 | DataRate::Mbps24 => CodeRate::Half,
            DataRate::Mbps48 => CodeRate::TwoThirds,
            DataRate::Mbps9 | DataRate::Mbps18 | DataRate::Mbps36 | DataRate::Mbps54 => {
                CodeRate::ThreeQuarters
            }
        }
    }

    /// Coded bits per subcarrier (`N_BPSC`).
    pub fn nbpsc(self) -> usize {
        self.modulation().bits_per_symbol()
    }

    /// Coded bits per OFDM symbol (`N_CBPS` = 48 · `N_BPSC`).
    pub fn ncbps(self) -> usize {
        48 * self.nbpsc()
    }

    /// Data bits per OFDM symbol (`N_DBPS`).
    pub fn ndbps(self) -> usize {
        self.ncbps() * self.code_rate().numerator() / self.code_rate().denominator()
    }

    /// The 4-bit RATE field of the SIGNAL symbol (Clause 17.3.4.2),
    /// LSB-first as transmitted.
    pub fn signal_bits(self) -> [u8; 4] {
        // Values from Table 17-6, written MSB-first then reversed: R1..R4.
        let code: u8 = match self {
            DataRate::Mbps6 => 0b1101,
            DataRate::Mbps9 => 0b1111,
            DataRate::Mbps12 => 0b0101,
            DataRate::Mbps18 => 0b0111,
            DataRate::Mbps24 => 0b1001,
            DataRate::Mbps36 => 0b1011,
            DataRate::Mbps48 => 0b0001,
            DataRate::Mbps54 => 0b0011,
        };
        // R1 is transmitted first and is the MSB of the table value.
        [
            (code >> 3) & 1,
            (code >> 2) & 1,
            (code >> 1) & 1,
            code & 1,
        ]
    }

    /// Decodes the 4-bit RATE field; `None` for reserved patterns.
    pub fn from_signal_bits(bits: [u8; 4]) -> Option<DataRate> {
        let code = (bits[0] << 3) | (bits[1] << 2) | (bits[2] << 1) | bits[3];
        Some(match code {
            0b1101 => DataRate::Mbps6,
            0b1111 => DataRate::Mbps9,
            0b0101 => DataRate::Mbps12,
            0b0111 => DataRate::Mbps18,
            0b1001 => DataRate::Mbps24,
            0b1011 => DataRate::Mbps36,
            0b0001 => DataRate::Mbps48,
            0b0011 => DataRate::Mbps54,
            _ => return None,
        })
    }

    /// The minimum required SNR (dB) to sustain this rate.
    ///
    /// Calibrated against this simulator's channel: the lowest measured
    /// SNR at which a plain 1024-byte packet stream holds the paper's
    /// 99.3 % PRR target at the median position, plus 0.5 dB headroom
    /// (see `cos-experiments --bin calibrate_thresholds`). The values
    /// land within ~1 dB of the paper's anchors (24 Mbps → 12 dB there,
    /// 13 dB here) and of common 802.11a link-abstraction tables.
    pub fn min_snr_db(self) -> f64 {
        match self {
            DataRate::Mbps6 => 7.0,
            DataRate::Mbps9 => 7.5,
            DataRate::Mbps12 => 8.0,
            DataRate::Mbps18 => 10.0,
            DataRate::Mbps24 => 13.0,
            DataRate::Mbps36 => 16.5,
            DataRate::Mbps48 => 20.5,
            DataRate::Mbps54 => 22.0,
        }
    }

    /// SNR-based rate selection: the fastest rate whose minimum SNR is
    /// cleared by `measured_snr_db`; the slowest rate if none is.
    pub fn select(measured_snr_db: f64) -> DataRate {
        DataRate::ALL
            .iter()
            .rev()
            .copied()
            .find(|r| measured_snr_db >= r.min_snr_db())
            .unwrap_or(DataRate::Mbps6)
    }

    /// This rate's position on the staircase: its index in
    /// [`DataRate::ALL`] (0 = slowest). The band arithmetic surface the
    /// link-adaptation staircase (`cos_core::adaptation`) steps on.
    pub fn band_index(self) -> usize {
        DataRate::ALL.iter().position(|&r| r == self).expect("every rate is in ALL")
    }

    /// The next faster rate — one staircase band up — or `None` at
    /// 54 Mbps.
    pub fn faster(self) -> Option<DataRate> {
        DataRate::ALL.get(self.band_index() + 1).copied()
    }

    /// The next slower rate — one staircase band down — or `None` at
    /// 6 Mbps.
    pub fn slower(self) -> Option<DataRate> {
        self.band_index().checked_sub(1).map(|i| DataRate::ALL[i])
    }

    /// Number of DATA OFDM symbols needed for a PSDU of `psdu_bytes`
    /// (Clause 17.3.5.3: SERVICE 16 + 8·bytes + 6 tail, padded up).
    pub fn data_symbol_count(self, psdu_bytes: usize) -> usize {
        let bits = 16 + 8 * psdu_bytes + 6;
        bits.div_ceil(self.ndbps())
    }

    /// Airtime of a whole frame in microseconds: preamble (16 µs) +
    /// SIGNAL (4 µs) + 4 µs per DATA symbol.
    pub fn frame_airtime_us(self, psdu_bytes: usize) -> f64 {
        16.0 + 4.0 + 4.0 * self.data_symbol_count(psdu_bytes) as f64
    }
}

impl std::fmt::Display for DataRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} Mbps ({},{})", self.mbps(), self.modulation(), self.code_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_17_3_parameters() {
        // (rate, Nbpsc, Ncbps, Ndbps) from IEEE 802.11-2012 Table 17-4.
        let expect = [
            (DataRate::Mbps6, 1, 48, 24),
            (DataRate::Mbps9, 1, 48, 36),
            (DataRate::Mbps12, 2, 96, 48),
            (DataRate::Mbps18, 2, 96, 72),
            (DataRate::Mbps24, 4, 192, 96),
            (DataRate::Mbps36, 4, 192, 144),
            (DataRate::Mbps48, 6, 288, 192),
            (DataRate::Mbps54, 6, 288, 216),
        ];
        for (rate, nbpsc, ncbps, ndbps) in expect {
            assert_eq!(rate.nbpsc(), nbpsc, "{rate}");
            assert_eq!(rate.ncbps(), ncbps, "{rate}");
            assert_eq!(rate.ndbps(), ndbps, "{rate}");
        }
    }

    #[test]
    fn mbps_matches_symbol_rate() {
        // Ndbps per 4 µs symbol must equal the nominal bit rate.
        for rate in DataRate::ALL {
            assert_eq!(rate.ndbps() as u32, rate.mbps() * 4, "{rate}");
        }
    }

    #[test]
    fn signal_bits_roundtrip() {
        for rate in DataRate::ALL {
            assert_eq!(DataRate::from_signal_bits(rate.signal_bits()), Some(rate));
        }
    }

    #[test]
    fn reserved_rate_patterns_rejected() {
        assert_eq!(DataRate::from_signal_bits([0, 0, 0, 0]), None);
        assert_eq!(DataRate::from_signal_bits([1, 1, 1, 0]), None);
    }

    #[test]
    fn min_snrs_are_monotone() {
        for pair in DataRate::ALL.windows(2) {
            assert!(pair[0].min_snr_db() < pair[1].min_snr_db());
        }
    }

    #[test]
    fn paper_anchor_24mbps_reproduces_within_a_db() {
        // The paper measured 12 dB as the 24 Mbps minimum; the simulator
        // calibrates to 13 dB (different SNR-estimation details).
        assert!((DataRate::Mbps24.min_snr_db() - 12.0).abs() <= 1.0);
        // Paper example: measured SNR 15 dB selects 24 Mbps.
        assert_eq!(DataRate::select(15.0), DataRate::Mbps24);
    }

    #[test]
    fn selection_boundaries() {
        assert_eq!(DataRate::select(-3.0), DataRate::Mbps6);
        assert_eq!(DataRate::select(8.0), DataRate::Mbps12);
        assert_eq!(DataRate::select(9.9), DataRate::Mbps12);
        assert_eq!(DataRate::select(22.0), DataRate::Mbps54);
        assert_eq!(DataRate::select(40.0), DataRate::Mbps54);
    }

    #[test]
    fn symbol_count_for_1024_bytes() {
        // 16 + 8192 + 6 = 8214 bits; at 24 Mbps (96 dbps) → 86 symbols.
        assert_eq!(DataRate::Mbps24.data_symbol_count(1024), 86);
        // At 54 Mbps (216 dbps) → 39 symbols.
        assert_eq!(DataRate::Mbps54.data_symbol_count(1024), 39);
    }

    #[test]
    fn airtime_of_known_frame() {
        let t = DataRate::Mbps24.frame_airtime_us(1024);
        assert_eq!(t, 16.0 + 4.0 + 4.0 * 86.0);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(DataRate::Mbps36.to_string(), "36 Mbps (16QAM,3/4)");
    }
}
