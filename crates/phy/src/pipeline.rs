//! The zero-copy staged pipeline: caller-owned workspaces threaded
//! through the transmit and receive chains.
//!
//! Every stage of the PHY has two entry points: an owned API that
//! allocates its result (`build_frame`, `receive`, …) and a `*_into`
//! variant that writes into buffers borrowed from a workspace defined
//! here. The owned APIs are thin wrappers over the `*_into`
//! implementations with fresh scratch, so there is exactly one
//! implementation of every transform and the two paths are bit-identical
//! by construction (see `docs/ARCHITECTURE.md` for the ownership and
//! determinism rules).
//!
//! A workspace belongs to exactly one session or one worker thread; the
//! structs here are plain bags of buffers with no interior mutability.

use crate::frame::{run_staged_viterbi, staged_lane_frame, PreparedDataField};
use crate::ofdm::FreqSymbol;
use crate::rates::DataRate;
use crate::rx::{FrontEnd, Receiver, RxConfig, RxDecodeOut, RxFrame, RxScratch};
use crate::subcarriers::NUM_DATA;
use crate::sync::{correct_cfo, Acquisition, Synchronizer};
use crate::tx::{Transmitter, TxFrame};
use crate::error::PhyError;
use cos_dsp::lanes::LANES;
use cos_dsp::Complex;
use cos_fec::{FecWorkspace, SymbolBatch, ViterbiDecoder};

/// Transmit-side workspace: the frame under construction and its rendered
/// waveform, plus the PSDU/FEC scratch behind them.
#[derive(Debug, Clone)]
pub struct TxWorkspace {
    /// The frame most recently built by [`Transmitter::build_frame_into`].
    pub frame: TxFrame,
    /// The waveform most recently rendered by [`TxWorkspace::render`].
    pub samples: Vec<Complex>,
    /// PSDU assembly scratch (payload ‖ FCS).
    pub psdu: Vec<u8>,
    /// Encode-side FEC scratch.
    pub fec: FecWorkspace,
}

impl Default for TxWorkspace {
    fn default() -> Self {
        TxWorkspace {
            frame: TxFrame::empty(),
            samples: Vec::new(),
            psdu: Vec::new(),
            fec: FecWorkspace::new(),
        }
    }
}

impl TxWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        TxWorkspace::default()
    }

    /// Renders `self.frame` (including any silences inserted since it was
    /// built) into `self.samples`, fully overwriting them.
    pub fn render(&mut self) -> &[Complex] {
        let TxWorkspace { frame, samples, .. } = self;
        frame.to_time_samples_into(samples);
        samples
    }
}

/// Receive-side workspace: a landing zone for channel output, the
/// front-end measurements, and the decoder's scratch and output.
#[derive(Debug, Clone)]
pub struct RxWorkspace {
    /// Landing zone for the channel's output waveform (filled by e.g.
    /// `cos_channel::Link::transmit_into`).
    pub samples: Vec<Complex>,
    /// Frame-aligned, CFO-corrected copy of a raw stream (filled by
    /// [`Receiver::receive_stream_into`]).
    pub aligned: Vec<Complex>,
    /// Front-end measurements of the last received frame.
    pub fe: FrontEnd,
    /// Decoder scratch.
    pub scratch: RxScratch,
    /// Decoder output for the last received frame.
    pub out: RxDecodeOut,
}

impl Default for RxWorkspace {
    fn default() -> Self {
        RxWorkspace {
            samples: Vec::new(),
            aligned: Vec::new(),
            fe: FrontEnd::empty(),
            scratch: RxScratch::default(),
            out: RxDecodeOut::default(),
        }
    }
}

impl RxWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        RxWorkspace::default()
    }

    /// Materialises the last decode as an owned [`RxFrame`].
    pub fn to_rx_frame(&self) -> RxFrame {
        self.out.to_rx_frame(&self.fe)
    }
}

/// One session's (or one worker thread's) complete PHY scratch.
#[derive(Debug, Clone, Default)]
pub struct PhyWorkspace {
    /// Transmit-side buffers.
    pub tx: TxWorkspace,
    /// Receive-side buffers.
    pub rx: RxWorkspace,
}

impl PhyWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        PhyWorkspace::default()
    }
}

impl Receiver {
    /// Front end + decode writing entirely into a caller-owned
    /// [`RxWorkspace`] (`ws.samples` is left untouched — pass the input
    /// separately so a link can fill `ws.samples` first and hand it in).
    ///
    /// # Errors
    ///
    /// Any [`PhyError`] from the front end; `ws` holds unspecified
    /// partial results on error.
    pub fn receive_into(
        &self,
        samples: &[Complex],
        config: &RxConfig<'_>,
        ws: &mut RxWorkspace,
    ) -> Result<(), PhyError> {
        let RxWorkspace { fe, scratch, out, .. } = ws;
        self.front_end_into(samples, fe)?;
        self.decode_into(fe, config.erasures, scratch, out);
        Ok(())
    }

    /// Stream variant of [`Receiver::receive_into`]: acquires the
    /// preamble from a raw stream with unknown frame offset and CFO,
    /// aligns and CFO-corrects the frame into `ws.aligned`, then runs
    /// front end + decode into `ws`.
    ///
    /// # Errors
    ///
    /// [`PhyError::NoPreamble`] if acquisition fails, else any front-end
    /// error; `ws` holds unspecified partial results on error.
    pub fn receive_stream_into(
        &self,
        stream: &[Complex],
        config: &RxConfig<'_>,
        ws: &mut RxWorkspace,
    ) -> Result<Acquisition, PhyError> {
        let acq = Synchronizer::default().acquire(stream).ok_or(PhyError::NoPreamble)?;
        ws.aligned.clear();
        ws.aligned.extend_from_slice(&stream[acq.frame_start..]);
        correct_cfo(&mut ws.aligned, acq.cfo_hz);
        let RxWorkspace { aligned, fe, scratch, out, .. } = ws;
        self.front_end_into(aligned, fe)?;
        self.decode_into(fe, config.erasures, scratch, out);
        Ok(acq)
    }
}

/// A named stage of the zero-copy pipeline. The trait is the seam later
/// work hangs batching, sharding and per-stage instrumentation off: a
/// stage owns no buffers, declares its workspace type, and can restore
/// any workspace to a like-new state.
pub trait PipelineStage {
    /// The scratch this stage borrows per invocation.
    type Workspace;

    /// Stable, human-readable stage name (for instrumentation).
    fn name(&self) -> &'static str;

    /// Clears a workspace back to its just-constructed state (buffer
    /// capacity may be retained).
    fn reset(&self, ws: &mut Self::Workspace);
}

/// The transmit stage: payload in, frequency-domain frame + waveform out.
#[derive(Debug, Clone, Default)]
pub struct TxPipeline {
    tx: Transmitter,
}

impl TxPipeline {
    /// Creates the stage.
    pub fn new() -> Self {
        TxPipeline::default()
    }

    /// The wrapped transmitter.
    pub fn transmitter(&self) -> &Transmitter {
        &self.tx
    }

    /// Builds a frame into `ws.frame` and renders `ws.samples` in one
    /// step. Insert silences between [`Transmitter::build_frame_into`] and
    /// [`TxWorkspace::render`] instead when CoS control embedding is
    /// needed.
    pub fn build_and_render(
        &self,
        payload: &[u8],
        rate: DataRate,
        scrambler_seed: u8,
        ws: &mut TxWorkspace,
    ) {
        self.tx.build_frame_into(payload, rate, scrambler_seed, ws);
        ws.render();
    }
}

impl PipelineStage for TxPipeline {
    type Workspace = TxWorkspace;

    fn name(&self) -> &'static str {
        "tx"
    }

    fn reset(&self, ws: &mut Self::Workspace) {
        ws.frame.data_symbols.clear();
        ws.frame.mapped_points.clear();
        ws.frame.silence_mask.clear();
        ws.frame.signal_symbol = FreqSymbol::empty();
        ws.samples.clear();
        ws.psdu.clear();
    }
}

/// The receive stage: waveform in, front-end measurements + decoded bits
/// out.
#[derive(Debug, Clone, Default)]
pub struct RxPipeline {
    rx: Receiver,
}

impl RxPipeline {
    /// Creates the stage.
    pub fn new() -> Self {
        RxPipeline::default()
    }

    /// The wrapped receiver.
    pub fn receiver(&self) -> &Receiver {
        &self.rx
    }

    /// Runs front end + decode into `ws`.
    ///
    /// # Errors
    ///
    /// Any [`PhyError`] from the front end.
    pub fn receive_into(
        &self,
        samples: &[Complex],
        config: &RxConfig<'_>,
        ws: &mut RxWorkspace,
    ) -> Result<(), PhyError> {
        self.rx.receive_into(samples, config, ws)
    }

    /// Decodes a batch of independent frames, running their Viterbi
    /// trellises in lockstep ([`LANES`] frames per instruction) wherever a group
    /// of [`LANES`] frames staged cleanly — bit-identical to calling
    /// [`Receiver::decode_into`] on each frame in order.
    ///
    /// Frames whose preparation fails (e.g. too short), and the trailing
    /// `frames.len() % LANES` remainder, fall back to the per-frame kernel
    /// transparently. Each frame's `prep` slot is filled as a side effect;
    /// callers never need to initialise it beyond `None`.
    ///
    /// Allocation-free at steady state: the staging buffer in `batch`
    /// grows to the largest lane group and is then reused.
    ///
    /// # Panics
    ///
    /// Panics if an erasure mask's length differs from its frame's symbol
    /// count.
    pub fn decode_batch_into(&self, frames: &mut [RxBatchFrame<'_>], batch: &mut SymbolBatch) {
        // Stage 1: demap + FEC staging per frame.
        for f in frames.iter_mut() {
            f.prep = Some(self.rx.decode_prepare_into(f.fe, f.erasures, f.scratch, f.out));
        }
        // Stage 2: Viterbi — lockstep over whole lane groups where every
        // frame staged, per-frame otherwise.
        let decoder = ViterbiDecoder::new();
        for chunk in frames.chunks_mut(LANES) {
            if chunk.len() == LANES && chunk.iter().all(|f| matches!(f.prep, Some(Ok(_)))) {
                let mut staged = chunk.iter_mut().map(|f| {
                    let prep = f.prep.expect("just checked").expect("just checked");
                    staged_lane_frame(prep, &mut f.scratch.fec)
                });
                let mut lanes: [_; LANES] = std::array::from_fn(|_| staged.next().expect("LANES frames"));
                decoder.decode_lockstep(&mut lanes, true, batch);
            } else {
                for f in chunk.iter_mut() {
                    if let Some(Ok(prep)) = f.prep {
                        run_staged_viterbi(prep, &mut f.scratch.fec);
                    }
                }
            }
        }
        // Stage 3: descramble + CRC per frame.
        for f in frames.iter_mut() {
            let prep = f.prep.take().expect("staged above");
            self.rx.decode_finish_into(f.fe, prep, f.scratch, f.out);
        }
    }
}

/// One frame's slot in a [`RxPipeline::decode_batch_into`] call: the
/// front end it was measured with, its erasure mask, and the caller-owned
/// buffers the decode writes into. The batch seam is how `BatchEngine`
/// workers decode several sessions' symbols per instruction.
#[derive(Debug)]
pub struct RxBatchFrame<'a> {
    /// Front-end measurements of this frame.
    pub fe: &'a FrontEnd,
    /// Erasure mask (one row per DATA symbol), as in [`RxConfig`].
    pub erasures: Option<&'a [[bool; NUM_DATA]]>,
    /// This frame's decoder scratch (owned by its session/worker).
    pub scratch: &'a mut RxScratch,
    /// This frame's decoder output.
    pub out: &'a mut RxDecodeOut,
    /// Staging slot filled by [`RxPipeline::decode_batch_into`];
    /// initialise to `None`.
    pub prep: Option<Result<PreparedDataField, PhyError>>,
}

impl<'a> RxBatchFrame<'a> {
    /// Wraps one frame's borrows as a batch slot.
    pub fn new(
        fe: &'a FrontEnd,
        erasures: Option<&'a [[bool; NUM_DATA]]>,
        scratch: &'a mut RxScratch,
        out: &'a mut RxDecodeOut,
    ) -> Self {
        RxBatchFrame { fe, erasures, scratch, out, prep: None }
    }
}

impl PipelineStage for RxPipeline {
    type Workspace = RxWorkspace;

    fn name(&self) -> &'static str {
        "rx"
    }

    fn reset(&self, ws: &mut Self::Workspace) {
        ws.samples.clear();
        ws.aligned.clear();
        ws.fe.raw_symbols.clear();
        ws.fe.data_y.clear();
        ws.fe.equalized.clear();
        ws.out = RxDecodeOut::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_roundtrip_matches_owned_path() {
        let payload: Vec<u8> = (0..180).map(|i| (i * 11) as u8).collect();
        let tx = TxPipeline::new();
        let rx = RxPipeline::new();
        let mut ws = PhyWorkspace::new();
        for rate in DataRate::ALL {
            tx.build_and_render(&payload, rate, 0x2B, &mut ws.tx);
            let owned_frame = Transmitter::new().build_frame(&payload, rate, 0x2B);
            assert_eq!(ws.tx.samples, owned_frame.to_time_samples(), "{rate}");

            rx.receive_into(&ws.tx.samples, &RxConfig::ideal(), &mut ws.rx)
                .expect("clean decode");
            let owned = Receiver::new()
                .receive(&ws.tx.samples, &RxConfig::ideal())
                .expect("clean decode");
            assert_eq!(ws.rx.out.crc_ok, owned.crc_ok(), "{rate}");
            assert_eq!(ws.rx.out.payload, payload, "{rate}");
            assert_eq!(ws.rx.out.data_bits, owned.data_bits, "{rate}");
            assert_eq!(ws.rx.out.hard_coded_bits, owned.hard_coded_bits, "{rate}");
        }
    }

    #[test]
    fn silence_then_render_flows_through_workspace() {
        let tx = TxPipeline::new();
        let mut ws = TxWorkspace::new();
        tx.transmitter()
            .build_frame_into(&[0xA5; 120], DataRate::Mbps24, 0x5D, &mut ws);
        let clean_energy: f64 = ws.render().iter().map(|x| x.norm_sqr()).sum();
        ws.frame.silence(0, 3);
        ws.frame.silence(1, 17);
        let silenced_energy: f64 = ws.render().iter().map(|x| x.norm_sqr()).sum();
        assert!(silenced_energy < clean_energy);
        assert_eq!(ws.frame.silence_count(), 2);
    }

    #[test]
    fn stream_variant_matches_owned_on_dirty_workspace() {
        use crate::rx::RxFrame;
        use crate::sync::apply_cfo;

        let payload: Vec<u8> = (0..200).map(|i| (i * 7) as u8).collect();
        let mut stream = vec![Complex::ZERO; 137];
        stream.extend(
            Transmitter::new().build_frame(&payload, DataRate::Mbps24, 0x5D).to_time_samples(),
        );
        apply_cfo(&mut stream, 1_500.0);

        let rx = Receiver::new();
        let (acq_owned, frame_owned): (Acquisition, RxFrame) =
            rx.receive_stream(&stream, &RxConfig::ideal()).expect("owned stream decode");

        // Dirty the workspace with an unrelated frame first — the stream
        // variant must fully overwrite it.
        let mut ws = RxWorkspace::new();
        let other =
            Transmitter::new().build_frame(&[0x77; 90], DataRate::Mbps6, 0x11).to_time_samples();
        rx.receive_into(&other, &RxConfig::ideal(), &mut ws).expect("warm-up decode");
        let acq =
            rx.receive_stream_into(&stream, &RxConfig::ideal(), &mut ws).expect("stream decode");

        assert_eq!(acq.frame_start, acq_owned.frame_start);
        assert_eq!(acq.cfo_hz.to_bits(), acq_owned.cfo_hz.to_bits());
        assert_eq!(acq.confidence.to_bits(), acq_owned.confidence.to_bits());
        assert!(ws.out.crc_ok);
        assert_eq!(Some(&ws.out.payload), frame_owned.payload.as_ref());
        assert_eq!(ws.out.data_bits, frame_owned.data_bits);
        assert_eq!(ws.out.hard_coded_bits, frame_owned.hard_coded_bits);
    }

    #[test]
    fn batch_decode_matches_per_frame_including_remainder() {
        // 6 frames (one full lane group + 2 remainder) of mixed rates and
        // lengths, one with an erasure mask: batch decode must be
        // bit-identical to per-frame decode_into.
        let rates = [
            DataRate::Mbps6,
            DataRate::Mbps24,
            DataRate::Mbps24,
            DataRate::Mbps54,
            DataRate::Mbps12,
            DataRate::Mbps48,
        ];
        let tx = Transmitter::new();
        let rx = RxPipeline::new();
        let mut fes = Vec::new();
        let mut masks: Vec<Option<Vec<[bool; NUM_DATA]>>> = Vec::new();
        for (k, &rate) in rates.iter().enumerate() {
            let payload: Vec<u8> = (0..60 + k * 37).map(|i| (i * 31 + k) as u8).collect();
            let mut frame = tx.build_frame(&payload, rate, 0x5D);
            let mask = if k == 2 {
                let mut m = vec![[false; NUM_DATA]; frame.n_data_symbols()];
                for (n, row) in m.iter_mut().enumerate() {
                    let sc = (n * 5) % NUM_DATA;
                    frame.silence(n, sc);
                    row[sc] = true;
                }
                Some(m)
            } else {
                None
            };
            let fe = rx.receiver().front_end(&frame.to_time_samples()).expect("front end");
            fes.push(fe);
            masks.push(mask);
        }

        // Per-frame reference.
        let mut reference = Vec::new();
        for (fe, mask) in fes.iter().zip(masks.iter()) {
            let mut scratch = RxScratch::default();
            let mut out = RxDecodeOut::default();
            rx.receiver().decode_into(fe, mask.as_deref(), &mut scratch, &mut out);
            reference.push(out);
        }

        // Batched decode into dirty workspaces.
        let mut scratches: Vec<RxScratch> = Vec::new();
        let mut outs: Vec<RxDecodeOut> = Vec::new();
        for fe in fes.iter() {
            let mut scratch = RxScratch::default();
            let mut out = RxDecodeOut::default();
            rx.receiver().decode_into(&fes[0], None, &mut scratch, &mut out); // dirty
            let _ = fe;
            scratches.push(scratch);
            outs.push(out);
        }
        let mut frames: Vec<RxBatchFrame<'_>> = fes
            .iter()
            .zip(masks.iter())
            .zip(scratches.iter_mut().zip(outs.iter_mut()))
            .map(|((fe, mask), (scratch, out))| RxBatchFrame::new(fe, mask.as_deref(), scratch, out))
            .collect();
        let mut batch = SymbolBatch::new();
        rx.decode_batch_into(&mut frames, &mut batch);
        drop(frames);

        for (k, (got, want)) in outs.iter().zip(reference.iter()).enumerate() {
            assert_eq!(got.crc_ok, want.crc_ok, "frame {k}");
            assert_eq!(got.payload, want.payload, "frame {k}");
            assert_eq!(got.data_bits, want.data_bits, "frame {k}");
            assert_eq!(got.hard_coded_bits, want.hard_coded_bits, "frame {k}");
            assert_eq!(got.scrambler_seed, want.scrambler_seed, "frame {k}");
            assert!(got.crc_ok, "frame {k} should decode cleanly");
        }
    }

    #[test]
    fn stage_reset_clears_workspaces() {
        let tx = TxPipeline::new();
        let rx = RxPipeline::new();
        let mut ws = PhyWorkspace::new();
        tx.build_and_render(b"reset me", DataRate::Mbps6, 0x11, &mut ws.tx);
        rx.receive_into(&ws.tx.samples.clone(), &RxConfig::ideal(), &mut ws.rx)
            .expect("decodes");
        assert_eq!(tx.name(), "tx");
        assert_eq!(rx.name(), "rx");
        tx.reset(&mut ws.tx);
        rx.reset(&mut ws.rx);
        assert!(ws.tx.samples.is_empty());
        assert!(ws.tx.frame.data_symbols.is_empty());
        assert!(ws.rx.samples.is_empty());
        assert!(!ws.rx.out.crc_ok);
    }
}
