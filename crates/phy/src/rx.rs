//! The 802.11a receive chain, split into a **front end** (FFT, channel
//! estimation, equalisation, noise estimation) and a **decoder** (soft
//! demapping with optional erasures, de-interleaving, Viterbi, CRC).
//!
//! The split is what CoS needs: the energy detector inspects the front
//! end's raw FFT magnitudes to locate silence symbols, *then* the decoder
//! is invoked with the resulting erasure mask so those symbols' bits carry
//! zero LLR (paper Eq. 7).

use crate::error::PhyError;
use crate::frame::{
    extract_payload_into, finish_data_field_into, prepare_data_field_into, run_staged_viterbi,
    PreparedDataField,
};
use crate::ofdm::{FreqSymbol, OfdmEngine};
use crate::preamble::{self, ltf_value, PREAMBLE_LEN};
use crate::rates::DataRate;
use crate::signal::decode_signal_symbol;
use crate::sync::Acquisition;
use crate::subcarriers::{bin_of, data_bins, NUM_DATA, PILOT_INDICES, PILOT_VALUES, SYMBOL_LEN};
use cos_dsp::lanes::LANES;
use cos_dsp::{kernel_mode, linear_to_db, Complex, KernelMode, Prbs127};
use cos_fec::FecWorkspace;

/// Floor applied to noise-variance estimates so ideal (noise-free)
/// channels produce finite LLR weights.
const NOISE_FLOOR_EPS: f64 = 1e-15;

/// Receiver configuration.
///
/// Borrows the erasure mask rather than owning it, so the energy
/// detector's mask is never cloned per frame on its way into the decoder.
#[derive(Debug, Clone, Copy, Default)]
pub struct RxConfig<'a> {
    /// Erasure mask from the energy detector: `erasures[symbol][logical_sc]`
    /// marks a silence symbol whose bits get zero LLR.
    pub erasures: Option<&'a [[bool; NUM_DATA]]>,
}

impl<'a> RxConfig<'a> {
    /// No erasures — a plain 802.11a receiver.
    pub fn ideal() -> Self {
        RxConfig::default()
    }

    /// A receiver fed an erasure mask (one row per DATA symbol).
    pub fn with_erasures(erasures: &'a [[bool; NUM_DATA]]) -> Self {
        RxConfig { erasures: Some(erasures) }
    }
}

/// Front-end output: everything measured before bit decisions.
#[derive(Debug, Clone)]
pub struct FrontEnd {
    /// Per-bin channel estimate from the long training field (zero on
    /// unused bins).
    pub h_est: [Complex; 64],
    /// Frequency-domain noise variance estimated from the difference of
    /// the two LTF repetitions.
    pub noise_var_ltf: f64,
    /// Frequency-domain noise variance from pilot-aided estimation over
    /// the DATA symbols (paper Eq. 5–6).
    pub noise_var_pilot: f64,
    /// The decoded SIGNAL field rate.
    pub rate: DataRate,
    /// The decoded SIGNAL field length (PSDU bytes).
    pub psdu_len: usize,
    /// Raw FFT output of every DATA symbol (all 64 bins) — the energy
    /// detector's input.
    pub raw_symbols: Vec<FreqSymbol>,
    /// Raw data-subcarrier values per symbol, logical order.
    pub data_y: Vec<[Complex; NUM_DATA]>,
    /// Equalised data-subcarrier values (`Y/H`) per symbol.
    pub equalized: Vec<[Complex; NUM_DATA]>,
}

impl FrontEnd {
    /// An empty placeholder for workspace initialisation; every field is
    /// fully overwritten by [`Receiver::front_end_into`].
    pub fn empty() -> Self {
        FrontEnd {
            h_est: [Complex::ZERO; 64],
            noise_var_ltf: 0.0,
            noise_var_pilot: 0.0,
            rate: DataRate::Mbps6,
            psdu_len: 0,
            raw_symbols: Vec::new(),
            data_y: Vec::new(),
            equalized: Vec::new(),
        }
    }

    /// Per-data-subcarrier SNR (linear) from the LTF estimate.
    pub fn per_subcarrier_snr(&self) -> [f64; NUM_DATA] {
        let sigma2 = self.noise_var_ltf.max(NOISE_FLOOR_EPS);
        let mut out = [0.0; NUM_DATA];
        for (slot, &bin) in out.iter_mut().zip(data_bins().iter()) {
            *slot = self.h_est[bin].norm_sqr() / sigma2;
        }
        out
    }

    /// The NIC-style **measured SNR** in dB: the dB-domain mean of
    /// per-subcarrier SNRs. Frequency-selective fading drags this below
    /// the true wideband SNR — the effect behind the paper's Fig. 2 gap.
    pub fn measured_snr_db(&self) -> f64 {
        let snrs = self.per_subcarrier_snr();
        let sum_db: f64 = snrs.iter().map(|&s| linear_to_db(s.max(1e-12))).sum();
        (sum_db / snrs.len() as f64).min(60.0)
    }

    /// The wideband SNR in dB: linear mean of per-subcarrier SNRs (what a
    /// channel sounder would report for this estimate).
    pub fn wideband_snr_db(&self) -> f64 {
        let snrs = self.per_subcarrier_snr();
        let mean: f64 = snrs.iter().sum::<f64>() / snrs.len() as f64;
        linear_to_db(mean.max(1e-12)).min(60.0)
    }

    /// The LLR reliability weight `|H_k|²/σ²` per logical subcarrier,
    /// using the pilot-aided noise estimate.
    pub fn llr_weights(&self) -> [f64; NUM_DATA] {
        let sigma2 = self.noise_var_pilot.max(NOISE_FLOOR_EPS);
        let mut out = [0.0; NUM_DATA];
        for (slot, &bin) in out.iter_mut().zip(data_bins().iter()) {
            *slot = self.h_est[bin].norm_sqr() / sigma2;
        }
        out
    }
}

/// A fully decoded frame.
#[derive(Debug, Clone)]
pub struct RxFrame {
    /// The front-end measurements the decode ran on.
    pub front_end: FrontEnd,
    /// The CRC-verified payload, if the frame decoded correctly.
    pub payload: Option<Vec<u8>>,
    /// Descrambled DATA-field bits (valid even when the CRC fails).
    pub data_bits: Vec<u8>,
    /// The recovered scrambler seed.
    pub scrambler_seed: Option<u8>,
    /// Hard decisions on every transmitted coded bit, in transmit
    /// (interleaved) order — compare against
    /// [`crate::frame::DataField::interleaved`] for the decoder-input BER
    /// of the paper's Fig. 3.
    pub hard_coded_bits: Vec<u8>,
    /// Why the DATA-field decode failed, when it did — lets the session
    /// layer classify receive failures without re-running the decoder.
    pub decode_error: Option<PhyError>,
}

impl RxFrame {
    /// Convenience: did the frame pass its CRC?
    pub fn crc_ok(&self) -> bool {
        self.payload.is_some()
    }
}

/// Decoder scratch: buffers the decode stage consumes but whose contents
/// nobody reads afterwards.
#[derive(Debug, Clone, Default)]
pub struct RxScratch {
    /// Soft bits in transmit (interleaved) order.
    pub llrs: Vec<f64>,
    /// FEC-chain scratch (deinterleave / depuncture / Viterbi).
    pub fec: FecWorkspace,
    /// Re-packed PSDU bytes for CRC verification.
    pub psdu: Vec<u8>,
}

/// The decoder's output in workspace form — the same fields as
/// [`RxFrame`] minus the cloned [`FrontEnd`], with the payload flattened
/// to a reusable `Vec` plus a CRC flag.
#[derive(Debug, Clone, Default)]
pub struct RxDecodeOut {
    /// Did the frame pass its CRC? [`RxDecodeOut::payload`] is only
    /// meaningful when `true`.
    pub crc_ok: bool,
    /// The CRC-verified payload (empty when `crc_ok` is `false`).
    pub payload: Vec<u8>,
    /// Descrambled DATA-field bits (valid even when the CRC fails).
    pub data_bits: Vec<u8>,
    /// The recovered scrambler seed.
    pub scrambler_seed: Option<u8>,
    /// Hard decisions on every transmitted coded bit, transmit order.
    pub hard_coded_bits: Vec<u8>,
    /// Why the DATA-field decode failed, when it did.
    pub decode_error: Option<PhyError>,
}

impl RxDecodeOut {
    /// Materialises an owned [`RxFrame`] (cloning the front end), for
    /// callers that want the owned-API result shape.
    pub fn to_rx_frame(&self, fe: &FrontEnd) -> RxFrame {
        RxFrame {
            front_end: fe.clone(),
            payload: self.crc_ok.then(|| self.payload.clone()),
            data_bits: self.data_bits.clone(),
            scrambler_seed: self.scrambler_seed,
            hard_coded_bits: self.hard_coded_bits.clone(),
            decode_error: self.decode_error,
        }
    }
}

/// The 802.11a receiver.
///
/// Timing synchronisation is ideal (the sample stream starts at the first
/// preamble sample) — a documented substitution for Sora's packet
/// detector; CoS itself operates entirely post-FFT.
#[derive(Debug, Clone)]
pub struct Receiver {
    engine: OfdmEngine,
}

impl Default for Receiver {
    fn default() -> Self {
        Self::new()
    }
}

impl Receiver {
    /// Creates a receiver.
    pub fn new() -> Self {
        Receiver { engine: OfdmEngine::new() }
    }

    /// Runs the front end: channel estimation, SIGNAL decode, per-symbol
    /// FFT + equalisation, noise estimation.
    ///
    /// # Errors
    ///
    /// Any [`PhyError`] from framing or SIGNAL decoding.
    pub fn front_end(&self, samples: &[Complex]) -> Result<FrontEnd, PhyError> {
        let mut fe = FrontEnd::empty();
        self.front_end_inner_into(samples, None, &mut fe)?;
        Ok(fe)
    }

    /// [`Receiver::front_end`] writing into a caller-owned [`FrontEnd`],
    /// which is fully overwritten on success.
    ///
    /// # Errors
    ///
    /// Any [`PhyError`] from framing or SIGNAL decoding; `fe` holds
    /// unspecified partial results on error.
    pub fn front_end_into(&self, samples: &[Complex], fe: &mut FrontEnd) -> Result<(), PhyError> {
        self.front_end_inner_into(samples, None, fe)
    }

    /// [`Receiver::front_end_known`] writing into a caller-owned
    /// [`FrontEnd`].
    ///
    /// # Errors
    ///
    /// Framing errors ([`PhyError::FrameTooShort`] /
    /// [`PhyError::LengthMismatch`]).
    pub fn front_end_known_into(
        &self,
        samples: &[Complex],
        rate: DataRate,
        psdu_len: usize,
        fe: &mut FrontEnd,
    ) -> Result<(), PhyError> {
        self.front_end_inner_into(samples, Some((rate, psdu_len)), fe)
    }

    /// Runs the front end with an out-of-band known `(rate, psdu_len)`,
    /// bypassing the SIGNAL field decode — used by measurement harnesses
    /// that must characterise channels too poor to carry SIGNAL.
    ///
    /// # Errors
    ///
    /// Framing errors ([`PhyError::FrameTooShort`] /
    /// [`PhyError::LengthMismatch`]).
    pub fn front_end_known(
        &self,
        samples: &[Complex],
        rate: DataRate,
        psdu_len: usize,
    ) -> Result<FrontEnd, PhyError> {
        let mut fe = FrontEnd::empty();
        self.front_end_inner_into(samples, Some((rate, psdu_len)), &mut fe)?;
        Ok(fe)
    }

    fn front_end_inner_into(
        &self,
        samples: &[Complex],
        known: Option<(DataRate, usize)>,
        fe: &mut FrontEnd,
    ) -> Result<(), PhyError> {
        let min_len = PREAMBLE_LEN + SYMBOL_LEN;
        if samples.len() < min_len {
            return Err(PhyError::FrameTooShort { got: samples.len(), need: min_len });
        }

        // --- Channel estimation from the two LTF bodies. ---
        let [r1, r2] = preamble::ltf_body_ranges();
        let y1 = self.engine.demodulate_body(&samples[r1]);
        let y2 = self.engine.demodulate_body(&samples[r2]);
        let mut h_est = [Complex::ZERO; 64];
        let mut noise_acc = 0.0;
        let mut used = 0usize;
        for idx in -26..=26i32 {
            if idx == 0 {
                continue;
            }
            let bin = bin_of(idx);
            let l = ltf_value(idx);
            h_est[bin] = (y1.0[bin] + y2.0[bin]).scale(0.5) / l;
            noise_acc += (y1.0[bin] - y2.0[bin]).norm_sqr() / 2.0;
            used += 1;
        }
        let noise_var_ltf = noise_acc / used as f64;

        // --- SIGNAL symbol. ---
        let sig_start = PREAMBLE_LEN;
        let (rate, psdu_len) = match known {
            Some(pair) => pair,
            None => {
                let sig = self.engine.demodulate(&samples[sig_start..sig_start + SYMBOL_LEN]);
                let mut sig_eq = [Complex::ZERO; NUM_DATA];
                for (slot, &bin) in sig_eq.iter_mut().zip(data_bins().iter()) {
                    *slot = sig.0[bin] / nonzero(h_est[bin]);
                }
                decode_signal_symbol(&sig_eq, 1.0)?
            }
        };

        // --- DATA symbols. ---
        let n_symbols = rate.data_symbol_count(psdu_len);
        let have = (samples.len() - sig_start - SYMBOL_LEN) / SYMBOL_LEN;
        if have < n_symbols {
            return Err(PhyError::LengthMismatch { need: n_symbols, got: have });
        }
        let polarity = Prbs127::pilot_polarity();
        let raw_symbols = &mut fe.raw_symbols;
        let data_y = &mut fe.data_y;
        let equalized = &mut fe.equalized;
        raw_symbols.clear();
        data_y.clear();
        equalized.clear();
        raw_symbols.resize(n_symbols, FreqSymbol::empty());
        data_y.reserve(n_symbols);
        equalized.reserve(n_symbols);

        // FFT pass: lockstep groups of LANES symbols through the SoA
        // batch kernel, per-symbol for the remainder (and in scalar mode).
        // The batch kernel is bit-identical to per-symbol demodulation, so
        // the split point never shows in the output.
        let mut n = 0;
        if kernel_mode() == KernelMode::Lanes {
            while n + LANES <= n_symbols {
                let base = sig_start + SYMBOL_LEN * (n + 1);
                let group: [&[Complex]; LANES] = std::array::from_fn(|l| {
                    let start = base + SYMBOL_LEN * l;
                    &samples[start..start + SYMBOL_LEN]
                });
                self.engine.demodulate_batch_into(group, &mut raw_symbols[n..]);
                n += LANES;
            }
        }
        for (m, sym) in raw_symbols.iter_mut().enumerate().skip(n) {
            let start = sig_start + SYMBOL_LEN * (m + 1);
            *sym = self.engine.demodulate(&samples[start..start + SYMBOL_LEN]);
        }

        // Tracking pass: pilot phase tracking, equalisation and noise
        // estimation, symbol by symbol.
        let mut pilot_noise_acc = 0.0;
        for (n, sym) in raw_symbols.iter_mut().enumerate() {
            // Pilot phase tracking: residual CFO and phase noise rotate
            // every subcarrier of a symbol by a common phase; estimate it
            // from the four known pilots and derotate.
            let p = polarity[(n + 1) % Prbs127::PERIOD] as f64;
            let mut phase_acc = Complex::ZERO;
            for (idx, base) in PILOT_INDICES.iter().zip(PILOT_VALUES.iter()) {
                let bin = bin_of(*idx);
                let expected = h_est[bin].scale(base * p);
                phase_acc += sym.0[bin] * expected.conj();
            }
            let derotate = if phase_acc.norm_sqr() > 0.0 {
                Complex::from_angle(-phase_acc.arg())
            } else {
                Complex::ONE
            };

            for bin_value in sym.0.iter_mut() {
                *bin_value *= derotate;
            }

            let mut y_row = [Complex::ZERO; NUM_DATA];
            let mut eq_row = [Complex::ZERO; NUM_DATA];
            for (sc, &bin) in data_bins().iter().enumerate() {
                y_row[sc] = sym.0[bin];
                eq_row[sc] = sym.0[bin] / nonzero(h_est[bin]);
            }

            // Pilot-aided noise estimation (paper Eq. 5–6), after phase
            // tracking: n_i = y_i − H_i · x_i with known pilot x_i.
            for (idx, base) in PILOT_INDICES.iter().zip(PILOT_VALUES.iter()) {
                let bin = bin_of(*idx);
                let x = Complex::new(base * p, 0.0);
                let n_i = sym.0[bin] - h_est[bin] * x;
                pilot_noise_acc += n_i.norm_sqr();
            }

            data_y.push(y_row);
            equalized.push(eq_row);
        }
        let noise_var_pilot = if n_symbols == 0 {
            noise_var_ltf
        } else {
            pilot_noise_acc / (n_symbols * PILOT_INDICES.len()) as f64
        };

        fe.h_est = h_est;
        fe.noise_var_ltf = noise_var_ltf;
        fe.noise_var_pilot = noise_var_pilot;
        fe.rate = rate;
        fe.psdu_len = psdu_len;
        Ok(())
    }

    /// Decodes a front end into bits, applying an optional erasure mask
    /// (one row per DATA symbol; `true` = silence symbol ⇒ zero LLRs).
    ///
    /// # Panics
    ///
    /// Panics if the erasure mask's length differs from the symbol count.
    pub fn decode(&self, fe: &FrontEnd, erasures: Option<&[[bool; NUM_DATA]]>) -> RxFrame {
        let mut scratch = RxScratch::default();
        let mut out = RxDecodeOut::default();
        self.decode_into(fe, erasures, &mut scratch, &mut out);
        out.to_rx_frame(fe)
    }

    /// [`Receiver::decode`] writing into caller-owned scratch and output
    /// buffers, both fully overwritten — a dirty workspace from a previous
    /// frame produces bit-identical results to a fresh one.
    ///
    /// # Panics
    ///
    /// Panics if the erasure mask's length differs from the symbol count.
    pub fn decode_into(
        &self,
        fe: &FrontEnd,
        erasures: Option<&[[bool; NUM_DATA]]>,
        scratch: &mut RxScratch,
        out: &mut RxDecodeOut,
    ) {
        let prep = self.decode_prepare_into(fe, erasures, scratch, out);
        if let Ok(prep) = prep {
            run_staged_viterbi(prep, &mut scratch.fec);
        }
        self.decode_finish_into(fe, prep, scratch, out);
    }

    /// The demapping stage of [`Receiver::decode_into`]: soft-demaps every
    /// equalised subcarrier (zero LLRs on erased ones) into `scratch.llrs`
    /// and the hard decisions into `out.hard_coded_bits`.
    ///
    /// # Panics
    ///
    /// Panics if the erasure mask's length differs from the symbol count.
    pub fn demap_into(
        &self,
        fe: &FrontEnd,
        erasures: Option<&[[bool; NUM_DATA]]>,
        scratch: &mut RxScratch,
        out: &mut RxDecodeOut,
    ) {
        if let Some(mask) = erasures {
            assert_eq!(
                mask.len(),
                fe.equalized.len(),
                "erasure mask rows must match DATA symbol count"
            );
        }
        let modulation = fe.rate.modulation();
        let nbpsc = fe.rate.nbpsc();
        let weights = fe.llr_weights();

        let llrs = &mut scratch.llrs;
        let hard = &mut out.hard_coded_bits;
        llrs.clear();
        hard.clear();
        llrs.reserve(fe.equalized.len() * fe.rate.ncbps());
        hard.reserve(fe.equalized.len() * fe.rate.ncbps());
        for (n, row) in fe.equalized.iter().enumerate() {
            for (sc, &y) in row.iter().enumerate() {
                let erased = erasures.is_some_and(|m| m[n][sc]);
                if erased {
                    llrs.extend(std::iter::repeat_n(0.0, nbpsc));
                    hard.extend(std::iter::repeat_n(0, nbpsc));
                } else {
                    modulation.soft_demap(y, weights[sc], llrs);
                    modulation.hard_demap_into(y, hard);
                }
            }
        }
    }

    /// The front half of [`Receiver::decode_into`]: demap plus FEC staging
    /// (deinterleave / depuncture / truncate), stopping right before the
    /// Viterbi run so a batch driver can decode several frames' trellises
    /// in lockstep.
    ///
    /// Pass the returned result — `Ok` or `Err` — to
    /// [`Receiver::decode_finish_into`] after running the Viterbi (via
    /// [`run_staged_viterbi`] or
    /// [`cos_fec::ViterbiDecoder::decode_lockstep`]).
    ///
    /// # Errors
    ///
    /// [`PhyError::DataFieldTooShort`] when the frame is too truncated to
    /// stage; finish with the `Err` to record it in the output.
    ///
    /// # Panics
    ///
    /// Panics if the erasure mask's length differs from the symbol count.
    pub fn decode_prepare_into(
        &self,
        fe: &FrontEnd,
        erasures: Option<&[[bool; NUM_DATA]]>,
        scratch: &mut RxScratch,
        out: &mut RxDecodeOut,
    ) -> Result<PreparedDataField, PhyError> {
        self.demap_into(fe, erasures, scratch, out);
        prepare_data_field_into(&scratch.llrs, fe.rate, fe.psdu_len, &mut scratch.fec)
    }

    /// The back half of [`Receiver::decode_into`]: descrambles the decoded
    /// bits, verifies the CRC and fills the output fields. `prep` is the
    /// result of [`Receiver::decode_prepare_into`]; on `Ok` the Viterbi
    /// must already have run into `scratch.fec.decoded`.
    pub fn decode_finish_into(
        &self,
        fe: &FrontEnd,
        prep: Result<PreparedDataField, PhyError>,
        scratch: &mut RxScratch,
        out: &mut RxDecodeOut,
    ) {
        let result = prep.and_then(|_| finish_data_field_into(&scratch.fec, &mut out.data_bits));
        match result {
            Ok(seed) => {
                out.scrambler_seed = Some(seed);
                out.decode_error = None;
            }
            Err(e) => {
                out.data_bits.clear();
                out.scrambler_seed = None;
                out.decode_error = Some(e);
            }
        }
        out.crc_ok = !out.data_bits.is_empty()
            && extract_payload_into(&out.data_bits, fe.psdu_len, &mut scratch.psdu, &mut out.payload);
        if !out.crc_ok {
            out.payload.clear();
        }
    }

    /// Convenience: front end + decode in one call.
    ///
    /// # Errors
    ///
    /// Any [`PhyError`] from the front end.
    pub fn receive(&self, samples: &[Complex], config: &RxConfig<'_>) -> Result<RxFrame, PhyError> {
        let fe = self.front_end(samples)?;
        Ok(self.decode(&fe, config.erasures))
    }

    /// Receives from a raw stream with unknown frame offset and carrier
    /// frequency offset: acquires the preamble, corrects the CFO and
    /// decodes. Thin wrapper over
    /// [`receive_stream_into`](Self::receive_stream_into) with fresh
    /// scratch.
    ///
    /// # Errors
    ///
    /// [`PhyError::NoPreamble`] if acquisition fails, else any front-end
    /// error.
    pub fn receive_stream(
        &self,
        stream: &[Complex],
        config: &RxConfig<'_>,
    ) -> Result<(Acquisition, RxFrame), PhyError> {
        let mut ws = crate::pipeline::RxWorkspace::new();
        let acq = self.receive_stream_into(stream, config, &mut ws)?;
        Ok((acq, ws.to_rx_frame()))
    }
}

/// Guards equalisation against a zero channel estimate on a dead bin.
fn nonzero(h: Complex) -> Complex {
    if h.norm_sqr() < 1e-30 {
        Complex::new(1e-15, 0.0)
    } else {
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::Transmitter;

    fn loopback(payload: &[u8], rate: DataRate) -> RxFrame {
        let frame = Transmitter::new().build_frame(payload, rate, 0x5D);
        let samples = frame.to_time_samples();
        Receiver::new().receive(&samples, &RxConfig::ideal()).expect("clean decode")
    }

    #[test]
    fn loopback_all_rates() {
        for rate in DataRate::ALL {
            let payload: Vec<u8> = (0..100).map(|i| (i * 13) as u8).collect();
            let rx = loopback(&payload, rate);
            assert_eq!(rx.payload.as_deref(), Some(payload.as_slice()), "{rate}");
            assert_eq!(rx.front_end.rate, rate);
            assert_eq!(rx.scrambler_seed, Some(0x5D));
        }
    }

    #[test]
    fn ideal_channel_estimate_is_unity() {
        let rx = loopback(b"channel", DataRate::Mbps12);
        for &bin in data_bins().iter() {
            let h = rx.front_end.h_est[bin];
            assert!((h - Complex::ONE).norm() < 1e-9, "bin {bin}: {h}");
        }
        assert!(rx.front_end.noise_var_ltf < 1e-18);
    }

    #[test]
    fn hard_coded_bits_match_transmitted() {
        let frame = Transmitter::new().build_frame(b"bit exactness", DataRate::Mbps36, 0x21);
        let samples = frame.to_time_samples();
        let rx = Receiver::new().receive(&samples, &RxConfig::ideal()).expect("decode");
        assert_eq!(rx.hard_coded_bits, frame.data_field.interleaved);
    }

    #[test]
    fn too_short_stream_is_rejected() {
        let err = Receiver::new().receive(&[Complex::ZERO; 100], &RxConfig::ideal());
        assert!(matches!(err, Err(PhyError::FrameTooShort { .. })));
    }

    #[test]
    fn truncated_data_field_is_rejected() {
        let frame = Transmitter::new().build_frame(&[0u8; 500], DataRate::Mbps6, 0x5D);
        let samples = frame.to_time_samples();
        let cut = samples.len() - 3 * SYMBOL_LEN;
        let err = Receiver::new().receive(&samples[..cut], &RxConfig::ideal());
        assert!(matches!(err, Err(PhyError::LengthMismatch { .. })));
    }

    #[test]
    fn erasure_mask_recovers_silenced_frame() {
        // Silence a handful of symbols; without the mask the decoder sees
        // garbage hard zeros, with it the code bridges the gaps.
        let mut frame = Transmitter::new().build_frame(&[0x5Au8; 300], DataRate::Mbps24, 0x5D);
        let n_sym = frame.n_data_symbols();
        let mut mask = vec![[false; NUM_DATA]; n_sym];
        for (n, row) in mask.iter_mut().enumerate() {
            let sc = (n * 7) % NUM_DATA;
            frame.silence(n, sc);
            row[sc] = true;
        }
        let samples = frame.to_time_samples();
        let rx = Receiver::new()
            .receive(&samples, &RxConfig::with_erasures(&mask))
            .expect("front end ok");
        assert!(rx.crc_ok(), "EVD must bridge one silence per symbol");
    }

    #[test]
    fn silences_without_mask_can_still_decode_if_sparse() {
        // One silence per 4 symbols: even error-only decoding survives,
        // because the wrong hard bits are few.
        let mut frame = Transmitter::new().build_frame(&[0xC3u8; 300], DataRate::Mbps12, 0x5D);
        for n in (0..frame.n_data_symbols()).step_by(4) {
            frame.silence(n, 5);
        }
        let samples = frame.to_time_samples();
        let rx = Receiver::new().receive(&samples, &RxConfig::ideal()).expect("front end ok");
        assert!(rx.crc_ok());
    }

    #[test]
    fn measured_snr_is_high_on_clean_channel() {
        let rx = loopback(b"snr", DataRate::Mbps12);
        assert!(rx.front_end.measured_snr_db() > 50.0);
    }

    #[test]
    #[should_panic(expected = "erasure mask rows")]
    fn wrong_mask_length_panics() {
        let frame = Transmitter::new().build_frame(b"mask", DataRate::Mbps6, 0x5D);
        let samples = frame.to_time_samples();
        let receiver = Receiver::new();
        let fe = receiver.front_end(&samples).expect("front end");
        receiver.decode(&fe, Some(&[[false; NUM_DATA]; 1]));
    }
}
