//! PHY-layer error types.

use std::error::Error;
use std::fmt;

/// Errors produced by the receive chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhyError {
    /// The sample stream is shorter than a preamble + SIGNAL symbol.
    FrameTooShort {
        /// Samples provided.
        got: usize,
        /// Samples required.
        need: usize,
    },
    /// The SIGNAL field failed its even-parity check.
    SignalParity,
    /// The SIGNAL RATE field decoded to a reserved pattern.
    ReservedRate,
    /// The SIGNAL LENGTH field implies more DATA symbols than the frame
    /// carries.
    LengthMismatch {
        /// DATA symbols implied by the LENGTH field.
        need: usize,
        /// DATA symbols present in the sample stream.
        got: usize,
    },
    /// The descrambler could not recover a scrambler seed (all-zero
    /// keystream prefix).
    ScramblerSeed,
    /// No preamble was found in the sample stream.
    NoPreamble,
    /// The DATA field carries fewer decoded bits than the SERVICE prefix
    /// needs — the Viterbi input was empty or shorter than one seed's
    /// worth of bits (severely truncated frame).
    DataFieldTooShort {
        /// Decoded DATA-field bits available.
        got: usize,
        /// Bits required to recover the scrambler seed.
        need: usize,
    },
    /// An MPDU handed to the aggregator exceeds the 12-bit delimiter
    /// length field.
    MpduTooLong {
        /// Offending MPDU length in bytes.
        len: usize,
        /// Maximum encodable length.
        max: usize,
    },
    /// The aggregator was handed an empty MPDU list.
    EmptyAggregate,
}

impl PhyError {
    /// A short stable label for tallying errors by kind (used by the
    /// resilience layer to classify receive failures without matching on
    /// variant payloads).
    pub fn kind(&self) -> &'static str {
        match self {
            PhyError::FrameTooShort { .. } => "frame_too_short",
            PhyError::SignalParity => "signal_parity",
            PhyError::ReservedRate => "reserved_rate",
            PhyError::LengthMismatch { .. } => "length_mismatch",
            PhyError::ScramblerSeed => "scrambler_seed",
            PhyError::NoPreamble => "no_preamble",
            PhyError::DataFieldTooShort { .. } => "data_field_too_short",
            PhyError::MpduTooLong { .. } => "mpdu_too_long",
            PhyError::EmptyAggregate => "empty_aggregate",
        }
    }
}

impl fmt::Display for PhyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyError::FrameTooShort { got, need } => {
                write!(f, "frame too short: got {got} samples, need {need}")
            }
            PhyError::SignalParity => write!(f, "SIGNAL field parity check failed"),
            PhyError::ReservedRate => write!(f, "SIGNAL RATE field is a reserved pattern"),
            PhyError::LengthMismatch { need, got } => {
                write!(f, "LENGTH field needs {need} data symbols but frame has {got}")
            }
            PhyError::ScramblerSeed => write!(f, "could not recover scrambler seed"),
            PhyError::NoPreamble => write!(f, "no preamble found in sample stream"),
            PhyError::DataFieldTooShort { got, need } => {
                write!(f, "DATA field too short: got {got} bits, need {need}")
            }
            PhyError::MpduTooLong { len, max } => {
                write!(f, "MPDU of {len} bytes exceeds delimiter maximum {max}")
            }
            PhyError::EmptyAggregate => write!(f, "cannot aggregate an empty MPDU list"),
        }
    }
}

impl Error for PhyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = PhyError::FrameTooShort { got: 3, need: 400 };
        assert_eq!(e.to_string(), "frame too short: got 3 samples, need 400");
        assert!(PhyError::SignalParity.to_string().contains("parity"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(PhyError::SignalParity, PhyError::SignalParity);
        assert_ne!(PhyError::SignalParity, PhyError::ReservedRate);
    }

    #[test]
    fn implements_std_error() {
        fn is_error<E: Error>(_: E) {}
        is_error(PhyError::ReservedRate);
    }

    #[test]
    fn kinds_are_distinct_labels() {
        let all = [
            PhyError::FrameTooShort { got: 0, need: 1 },
            PhyError::SignalParity,
            PhyError::ReservedRate,
            PhyError::LengthMismatch { need: 1, got: 0 },
            PhyError::ScramblerSeed,
            PhyError::NoPreamble,
            PhyError::DataFieldTooShort { got: 0, need: 7 },
            PhyError::MpduTooLong { len: 5000, max: 4095 },
            PhyError::EmptyAggregate,
        ];
        let mut kinds: Vec<_> = all.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len());
    }
}
