//! PHY-layer error types.

use std::error::Error;
use std::fmt;

/// Errors produced by the receive chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhyError {
    /// The sample stream is shorter than a preamble + SIGNAL symbol.
    FrameTooShort {
        /// Samples provided.
        got: usize,
        /// Samples required.
        need: usize,
    },
    /// The SIGNAL field failed its even-parity check.
    SignalParity,
    /// The SIGNAL RATE field decoded to a reserved pattern.
    ReservedRate,
    /// The SIGNAL LENGTH field implies more DATA symbols than the frame
    /// carries.
    LengthMismatch {
        /// DATA symbols implied by the LENGTH field.
        need: usize,
        /// DATA symbols present in the sample stream.
        got: usize,
    },
    /// The descrambler could not recover a scrambler seed (all-zero
    /// keystream prefix).
    ScramblerSeed,
    /// No preamble was found in the sample stream.
    NoPreamble,
}

impl fmt::Display for PhyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyError::FrameTooShort { got, need } => {
                write!(f, "frame too short: got {got} samples, need {need}")
            }
            PhyError::SignalParity => write!(f, "SIGNAL field parity check failed"),
            PhyError::ReservedRate => write!(f, "SIGNAL RATE field is a reserved pattern"),
            PhyError::LengthMismatch { need, got } => {
                write!(f, "LENGTH field needs {need} data symbols but frame has {got}")
            }
            PhyError::ScramblerSeed => write!(f, "could not recover scrambler seed"),
            PhyError::NoPreamble => write!(f, "no preamble found in sample stream"),
        }
    }
}

impl Error for PhyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = PhyError::FrameTooShort { got: 3, need: 400 };
        assert_eq!(e.to_string(), "frame too short: got 3 samples, need 400");
        assert!(PhyError::SignalParity.to_string().contains("parity"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(PhyError::SignalParity, PhyError::SignalParity);
        assert_ne!(PhyError::SignalParity, PhyError::ReservedRate);
    }

    #[test]
    fn implements_std_error() {
        fn is_error<E: Error>(_: E) {}
        is_error(PhyError::ReservedRate);
    }
}
