//! The IEEE 802.11a OFDM physical layer.
//!
//! This crate is the simulator's stand-in for the paper's Sora SoftWiFi
//! driver: a complete 20 MHz 802.11a PHY with
//!
//! * [`rates`] — the eight data rates (6–54 Mbps), their modulation/code
//!   combinations, and the SNR-based rate-adaptation table,
//! * [`constellation`] — Gray-mapped BPSK/QPSK/16QAM/64QAM with exact
//!   normalisation and per-axis max-log soft demapping,
//! * [`subcarriers`] — the 64-bin layout (48 data, 4 pilots, guards),
//! * [`ofdm`] — IFFT/CP OFDM symbol modulation and demodulation,
//! * [`preamble`] — short/long training fields,
//! * [`signal`] — the SIGNAL field,
//! * [`frame`] — DATA-field bit processing (SERVICE/tail/pad, scramble,
//!   encode, interleave),
//! * [`tx`]/[`rx`] — the full transmit and receive chains. The transmit
//!   chain exposes its frequency-domain symbol grid *before* the IFFT so
//!   the CoS power controller can zero symbols (silence insertion), and the
//!   receive chain accepts an erasure mask so energy-detected silences
//!   become zero-LLR bits (erasure Viterbi decoding),
//! * [`pipeline`] — the zero-copy staged pipeline: caller-owned
//!   [`TxWorkspace`]/[`RxWorkspace`] scratch threaded through `*_into`
//!   variants of every stage, with the owned APIs as thin wrappers,
//! * [`evm`] — per-subcarrier EVM (paper Eq. 1) and the normalised EVM
//!   change `∇EVM` (paper Eq. 2),
//! * [`sync`] — packet detection, sample-accurate timing and CFO
//!   estimation/correction, so frames can be received from raw streams
//!   with unknown offsets,
//! * [`aggregation`] — A-MPDU-style frame aggregation with per-subframe
//!   FCS and delimiter resync.
//!
//! # Examples
//!
//! ```
//! use cos_phy::rates::DataRate;
//! use cos_phy::tx::Transmitter;
//! use cos_phy::rx::{Receiver, RxConfig};
//!
//! let payload = b"hello, free control messages".to_vec();
//! let frame = Transmitter::new().build_frame(&payload, DataRate::Mbps24, 0x5D);
//! let samples = frame.to_time_samples();
//! // Loop back over an ideal channel.
//! let rx = Receiver::new().receive(&samples, &RxConfig::ideal()).expect("decodable");
//! assert_eq!(rx.payload.as_deref(), Some(payload.as_slice()));
//! ```

pub mod aggregation;
pub mod constellation;
pub mod error;
pub mod evm;
pub mod frame;
pub mod ofdm;
pub mod pipeline;
pub mod preamble;
pub mod rates;
pub mod rx;
pub mod signal;
pub mod subcarriers;
pub mod sync;
pub mod tx;

pub use error::PhyError;
pub use pipeline::{
    PhyWorkspace, PipelineStage, RxBatchFrame, RxPipeline, RxWorkspace, TxPipeline, TxWorkspace,
};
pub use rates::DataRate;
