//! OFDM symbol modulation and demodulation (IFFT/CP and CP-strip/FFT).
//!
//! The transmitter implements Eq. (3) of the paper — a 64-point IFFT over
//! the frequency-domain symbol vector — and the receiver Eq. (4), the
//! matching FFT. Inserting a **silence symbol** is nothing more than
//! feeding 0 instead of a modulated point into the IFFT for that
//! subcarrier, which is exactly how [`crate::tx::TxFrame::silence`] works.

use crate::subcarriers::{bin_of, data_bins, FFT_SIZE, CP_LEN, PILOT_INDICES, PILOT_VALUES, SYMBOL_LEN};
use cos_dsp::fft::{plan, Fft};
use cos_dsp::lanes::LANES;
use cos_dsp::Complex;

/// A frequency-domain OFDM symbol: 64 FFT bins.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqSymbol(pub [Complex; FFT_SIZE]);

impl Default for FreqSymbol {
    fn default() -> Self {
        FreqSymbol([Complex::ZERO; FFT_SIZE])
    }
}

impl FreqSymbol {
    /// An all-null symbol.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Assembles a DATA/SIGNAL symbol from 48 constellation points in
    /// logical data order plus the pilot polarity `p_n` (+1/−1).
    ///
    /// # Panics
    ///
    /// Panics if `points.len() != 48` or `polarity` is not ±1.
    pub fn assemble(points: &[Complex], polarity: i8) -> Self {
        assert_eq!(points.len(), 48, "need 48 data points, got {}", points.len());
        assert!(polarity == 1 || polarity == -1, "pilot polarity must be ±1");
        let mut bins = [Complex::ZERO; FFT_SIZE];
        for (&p, &bin) in points.iter().zip(data_bins().iter()) {
            bins[bin] = p;
        }
        for (idx, base) in PILOT_INDICES.iter().zip(PILOT_VALUES.iter()) {
            bins[bin_of(*idx)] = Complex::new(base * polarity as f64, 0.0);
        }
        FreqSymbol(bins)
    }

    /// The 48 data-subcarrier values in logical order.
    pub fn data_points(&self) -> [Complex; 48] {
        let mut out = [Complex::ZERO; 48];
        for (slot, &bin) in out.iter_mut().zip(data_bins().iter()) {
            *slot = self.0[bin];
        }
        out
    }

    /// The 4 pilot values in [`PILOT_INDICES`] order.
    pub fn pilot_points(&self) -> [Complex; 4] {
        let mut out = [Complex::ZERO; 4];
        for (slot, idx) in out.iter_mut().zip(PILOT_INDICES) {
            *slot = self.0[bin_of(idx)];
        }
        out
    }
}

/// A reusable OFDM modulator/demodulator (wraps a 64-point FFT plan).
#[derive(Debug, Clone)]
pub struct OfdmEngine {
    fft: &'static Fft,
}

impl Default for OfdmEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl OfdmEngine {
    /// Creates an engine with a 64-point plan.
    pub fn new() -> Self {
        OfdmEngine { fft: plan(FFT_SIZE) }
    }

    /// Modulates a frequency-domain symbol to 80 time samples
    /// (16-sample cyclic prefix + 64-sample IFFT body).
    pub fn modulate(&self, sym: &FreqSymbol) -> [Complex; SYMBOL_LEN] {
        let mut body = sym.0;
        self.fft.inverse(&mut body);
        let mut out = [Complex::ZERO; SYMBOL_LEN];
        out[..CP_LEN].copy_from_slice(&body[FFT_SIZE - CP_LEN..]);
        out[CP_LEN..].copy_from_slice(&body);
        out
    }

    /// Demodulates 80 received samples back to frequency-domain bins,
    /// discarding the cyclic prefix.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != 80`.
    pub fn demodulate(&self, samples: &[Complex]) -> FreqSymbol {
        assert_eq!(samples.len(), SYMBOL_LEN, "an OFDM symbol is {SYMBOL_LEN} samples");
        let mut body = [Complex::ZERO; FFT_SIZE];
        body.copy_from_slice(&samples[CP_LEN..]);
        self.fft.forward(&mut body);
        FreqSymbol(body)
    }

    /// Demodulates [`LANES`] 80-sample OFDM symbols in lockstep through
    /// the SoA batch FFT, writing into `out[..LANES]` — bit-identical to
    /// [`LANES`] separate [`OfdmEngine::demodulate`] calls, several times
    /// cheaper because the butterflies run one lane op per twiddle.
    ///
    /// # Panics
    ///
    /// Panics if any input is not 80 samples or `out` holds fewer than
    /// [`LANES`] symbols.
    pub fn demodulate_batch_into(&self, symbols: [&[Complex]; LANES], out: &mut [FreqSymbol]) {
        assert!(out.len() >= LANES, "need {LANES} output symbols, got {}", out.len());
        let mut re = [0.0; FFT_SIZE * LANES];
        let mut im = [0.0; FFT_SIZE * LANES];
        for (lane, samples) in symbols.iter().enumerate() {
            assert_eq!(samples.len(), SYMBOL_LEN, "an OFDM symbol is {SYMBOL_LEN} samples");
            for (i, s) in samples[CP_LEN..].iter().enumerate() {
                re[i * LANES + lane] = s.re;
                im[i * LANES + lane] = s.im;
            }
        }
        self.fft.forward_soa(&mut re, &mut im);
        for (lane, sym) in out.iter_mut().take(LANES).enumerate() {
            for (i, bin) in sym.0.iter_mut().enumerate() {
                *bin = Complex::new(re[i * LANES + lane], im[i * LANES + lane]);
            }
        }
    }

    /// [`OfdmEngine::demodulate_batch_into`] returning the symbols.
    ///
    /// # Panics
    ///
    /// Panics if any input is not 80 samples.
    pub fn demodulate_batch(&self, symbols: [&[Complex]; LANES]) -> [FreqSymbol; LANES] {
        let mut out: [FreqSymbol; LANES] = std::array::from_fn(|_| FreqSymbol::empty());
        self.demodulate_batch_into(symbols, &mut out);
        out
    }

    /// Demodulates a bare 64-sample body (no cyclic prefix) — used for the
    /// two long-training symbols whose guard interval is shared.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != 64`.
    pub fn demodulate_body(&self, samples: &[Complex]) -> FreqSymbol {
        assert_eq!(samples.len(), FFT_SIZE, "an OFDM body is {FFT_SIZE} samples");
        let mut body = [Complex::ZERO; FFT_SIZE];
        body.copy_from_slice(samples);
        self.fft.forward(&mut body);
        FreqSymbol(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::Modulation;

    fn test_points() -> Vec<Complex> {
        (0..48)
            .map(|i| Modulation::Qpsk.map(&[(i % 2) as u8, ((i / 2) % 2) as u8]))
            .collect()
    }

    #[test]
    fn modulate_demodulate_roundtrip() {
        let engine = OfdmEngine::new();
        let sym = FreqSymbol::assemble(&test_points(), 1);
        let time = engine.modulate(&sym);
        let back = engine.demodulate(&time);
        for (a, b) in sym.0.iter().zip(back.0.iter()) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn cyclic_prefix_is_a_copy_of_the_tail() {
        let engine = OfdmEngine::new();
        let sym = FreqSymbol::assemble(&test_points(), -1);
        let time = engine.modulate(&sym);
        for i in 0..CP_LEN {
            assert_eq!(time[i], time[FFT_SIZE + i]);
        }
    }

    #[test]
    fn assemble_places_points_and_pilots() {
        let points = test_points();
        let sym = FreqSymbol::assemble(&points, 1);
        assert_eq!(sym.data_points().to_vec(), points);
        let pilots = sym.pilot_points();
        assert_eq!(pilots[0], Complex::new(1.0, 0.0));
        assert_eq!(pilots[3], Complex::new(-1.0, 0.0)); // the +21 pilot is negated
        // DC and guard bins are null.
        assert_eq!(sym.0[0], Complex::ZERO);
        assert_eq!(sym.0[27], Complex::ZERO);
    }

    #[test]
    fn negative_polarity_flips_pilots() {
        let sym = FreqSymbol::assemble(&test_points(), -1);
        let pilots = sym.pilot_points();
        assert_eq!(pilots[0], Complex::new(-1.0, 0.0));
        assert_eq!(pilots[3], Complex::new(1.0, 0.0));
    }

    #[test]
    fn zeroing_a_bin_creates_a_silence_symbol() {
        // Silence insertion = feeding 0 into the IFFT (paper Eq. 3).
        let engine = OfdmEngine::new();
        let mut sym = FreqSymbol::assemble(&test_points(), 1);
        let bin = crate::subcarriers::data_bins()[10];
        sym.0[bin] = Complex::ZERO;
        let rx = engine.demodulate(&engine.modulate(&sym));
        assert!(rx.0[bin].norm() < 1e-12, "silenced bin must carry no energy");
        // Other bins are untouched.
        let other = crate::subcarriers::data_bins()[11];
        assert!(rx.0[other].norm() > 0.5);
    }

    #[test]
    fn time_domain_power_matches_used_bins() {
        let engine = OfdmEngine::new();
        let sym = FreqSymbol::assemble(&test_points(), 1);
        let time = engine.modulate(&sym);
        let body_power: f64 = time[CP_LEN..].iter().map(|x| x.norm_sqr()).sum();
        // Parseval with 1/N IFFT: sum |x|² = sum |X|² / N = 52/64.
        let freq_power: f64 = sym.0.iter().map(|x| x.norm_sqr()).sum();
        assert!((body_power - freq_power / FFT_SIZE as f64).abs() < 1e-9);
        assert!((freq_power - 52.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "48 data points")]
    fn wrong_point_count_panics() {
        FreqSymbol::assemble(&[Complex::ZERO; 47], 1);
    }

    #[test]
    #[should_panic(expected = "80 samples")]
    fn wrong_sample_count_panics() {
        OfdmEngine::new().demodulate(&[Complex::ZERO; 79]);
    }

    #[test]
    fn batch_demodulate_is_bit_identical_to_scalar() {
        let engine = OfdmEngine::new();
        // Four distinct symbols, including one with a silenced bin.
        let times: Vec<[Complex; SYMBOL_LEN]> = (0..LANES)
            .map(|k| {
                let mut sym = FreqSymbol::assemble(&test_points(), if k % 2 == 0 { 1 } else { -1 });
                sym.0[data_bins()[k * 3]] = Complex::ZERO;
                engine.modulate(&sym)
            })
            .collect();
        let refs: [&[Complex]; LANES] = std::array::from_fn(|k| times[k].as_slice());
        let batch = engine.demodulate_batch(refs);
        for (k, t) in times.iter().enumerate() {
            let scalar = engine.demodulate(t);
            for (a, b) in scalar.0.iter().zip(batch[k].0.iter()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }
}
