//! The SIGNAL field (Clause 17.3.4): one BPSK rate-1/2 OFDM symbol carrying
//! RATE (4 bits), a reserved bit, LENGTH (12 bits), even parity and six
//! tail bits. It is convolutionally encoded and interleaved but **not**
//! scrambled.

use crate::constellation::Modulation;
use crate::error::PhyError;
use crate::rates::DataRate;
use cos_dsp::Complex;
use cos_fec::bits::{push_field, read_field};
use cos_fec::{ConvEncoder, Interleaver, ViterbiDecoder};

/// Number of information bits in the SIGNAL field.
pub const SIGNAL_BITS: usize = 24;

/// Builds the 24 SIGNAL bits for a frame.
///
/// # Panics
///
/// Panics if `length_bytes` exceeds the 12-bit LENGTH field (4095).
pub fn signal_bits(rate: DataRate, length_bytes: usize) -> [u8; SIGNAL_BITS] {
    assert!(length_bytes <= 0xFFF, "LENGTH field is 12 bits, got {length_bytes}");
    let mut bits = Vec::with_capacity(SIGNAL_BITS);
    bits.extend_from_slice(&rate.signal_bits());
    bits.push(0); // reserved
    push_field(&mut bits, length_bytes as u32, 12);
    let parity = bits.iter().fold(0u8, |p, &b| p ^ b);
    bits.push(parity);
    bits.extend_from_slice(&[0; 6]); // tail
    bits.try_into().expect("24 bits by construction")
}

/// Parses 24 decoded SIGNAL bits.
///
/// # Errors
///
/// [`PhyError::SignalParity`] on a parity failure,
/// [`PhyError::ReservedRate`] if the RATE pattern is reserved.
pub fn parse_signal_bits(bits: &[u8; SIGNAL_BITS]) -> Result<(DataRate, usize), PhyError> {
    let parity = bits[..18].iter().fold(0u8, |p, &b| p ^ b);
    if parity != 0 {
        return Err(PhyError::SignalParity);
    }
    let rate = DataRate::from_signal_bits([bits[0], bits[1], bits[2], bits[3]])
        .ok_or(PhyError::ReservedRate)?;
    let length = read_field(bits, 5, 12) as usize;
    Ok((rate, length))
}

/// Parses a SIGNAL bit stream of arbitrary length — the panic-free entry
/// point for untrusted input (fuzzers, corrupted captures).
///
/// # Errors
///
/// [`PhyError::FrameTooShort`] when fewer than [`SIGNAL_BITS`] bits are
/// given; otherwise the parity/rate errors of [`parse_signal_bits`].
pub fn parse_signal_slice(bits: &[u8]) -> Result<(DataRate, usize), PhyError> {
    if bits.len() < SIGNAL_BITS {
        return Err(PhyError::FrameTooShort { got: bits.len(), need: SIGNAL_BITS });
    }
    let arr: [u8; SIGNAL_BITS] = bits[..SIGNAL_BITS].try_into().expect("length checked");
    parse_signal_bits(&arr)
}

/// Encodes the SIGNAL bits to 48 BPSK constellation points (rate 1/2,
/// interleaved) ready for [`crate::ofdm::FreqSymbol::assemble`].
pub fn encode_signal_symbol(rate: DataRate, length_bytes: usize) -> Vec<Complex> {
    let bits = signal_bits(rate, length_bytes);
    let coded = ConvEncoder::new().encode(&bits);
    let interleaved = Interleaver::new(48, 1).interleave(&coded);
    interleaved.iter().map(|&b| Modulation::Bpsk.map(&[b])).collect()
}

/// Decodes 48 equalised SIGNAL points back to `(rate, length)`.
///
/// `weight` is the LLR reliability scale (uniform across the symbol is
/// fine for the SIGNAL field).
///
/// # Errors
///
/// Propagates the parity/rate errors of [`parse_signal_bits`].
pub fn decode_signal_symbol(points: &[Complex; 48], weight: f64) -> Result<(DataRate, usize), PhyError> {
    let mut llrs = Vec::with_capacity(48);
    for p in points {
        Modulation::Bpsk.soft_demap(*p, weight, &mut llrs);
    }
    let deinterleaved = Interleaver::new(48, 1).deinterleave_soft(&llrs);
    let decoded = ViterbiDecoder::new().decode(&deinterleaved, true);
    let bits: [u8; SIGNAL_BITS] = decoded.try_into().expect("24 data bits from 48 coded");
    parse_signal_bits(&bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_layout() {
        let bits = signal_bits(DataRate::Mbps24, 1024);
        assert_eq!(&bits[..4], &DataRate::Mbps24.signal_bits());
        assert_eq!(bits[4], 0);
        assert_eq!(read_field(&bits, 5, 12), 1024);
        assert_eq!(&bits[18..], &[bits[17] ^ bits[17], 0, 0, 0, 0, 0][..]); // tail zeros
    }

    #[test]
    fn parity_is_even() {
        for rate in DataRate::ALL {
            for len in [0usize, 1, 77, 1024, 4095] {
                let bits = signal_bits(rate, len);
                let ones: u32 = bits[..18].iter().map(|&b| b as u32).sum();
                assert_eq!(ones % 2, 0, "{rate} len {len}");
            }
        }
    }

    #[test]
    fn roundtrip_through_constellation() {
        for rate in DataRate::ALL {
            let points = encode_signal_symbol(rate, 1500);
            let arr: [Complex; 48] = points.try_into().expect("48 points");
            let (r, l) = decode_signal_symbol(&arr, 1.0).expect("clean decode");
            assert_eq!(r, rate);
            assert_eq!(l, 1500);
        }
    }

    #[test]
    fn corrupted_parity_is_detected() {
        let mut bits = signal_bits(DataRate::Mbps12, 100);
        bits[6] ^= 1;
        assert_eq!(parse_signal_bits(&bits), Err(PhyError::SignalParity));
    }

    #[test]
    fn reserved_rate_is_detected() {
        let mut bits = signal_bits(DataRate::Mbps12, 100);
        // Overwrite RATE with a reserved pattern (0000) and fix parity.
        let old_parity: u8 = bits[..18].iter().fold(0, |p, &b| p ^ b);
        bits[0] = 0;
        bits[1] = 0;
        bits[2] = 0;
        bits[3] = 0;
        let new_parity: u8 = bits[..18].iter().fold(0, |p, &b| p ^ b);
        bits[17] ^= old_parity ^ new_parity;
        assert_eq!(parse_signal_bits(&bits), Err(PhyError::ReservedRate));
    }

    #[test]
    fn survives_moderate_noise() {
        let points = encode_signal_symbol(DataRate::Mbps54, 2047);
        let mut arr: [Complex; 48] = points.try_into().expect("48 points");
        // Attenuate and perturb a few points; rate-1/2 BPSK is robust.
        for (i, p) in arr.iter_mut().enumerate() {
            let jitter = if i % 7 == 0 { -0.6 } else { 0.2 };
            *p += Complex::new(jitter, -jitter / 2.0);
        }
        let (r, l) = decode_signal_symbol(&arr, 1.0).expect("decode under noise");
        assert_eq!(r, DataRate::Mbps54);
        assert_eq!(l, 2047);
    }

    #[test]
    #[should_panic(expected = "12 bits")]
    fn oversized_length_panics() {
        signal_bits(DataRate::Mbps6, 5000);
    }

    #[test]
    fn slice_parser_rejects_short_input_without_panicking() {
        assert!(matches!(
            parse_signal_slice(&[1, 0, 1]),
            Err(PhyError::FrameTooShort { got: 3, need: SIGNAL_BITS })
        ));
        let bits = signal_bits(DataRate::Mbps24, 321);
        assert_eq!(parse_signal_slice(&bits), Ok((DataRate::Mbps24, 321)));
    }
}
