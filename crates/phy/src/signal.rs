//! The SIGNAL field (Clause 17.3.4): one BPSK rate-1/2 OFDM symbol carrying
//! RATE (4 bits), a reserved bit, LENGTH (12 bits), even parity and six
//! tail bits. It is convolutionally encoded and interleaved but **not**
//! scrambled.

use crate::constellation::Modulation;
use crate::error::PhyError;
use crate::rates::DataRate;
use cos_dsp::Complex;
use cos_fec::bits::read_field;
use cos_fec::{ConvEncoder, Interleaver, ViterbiDecoder};
use std::sync::OnceLock;

/// Number of information bits in the SIGNAL field.
pub const SIGNAL_BITS: usize = 24;

/// Number of coded bits in the SIGNAL field (rate 1/2, one BPSK symbol).
pub const SIGNAL_CODED_BITS: usize = 2 * SIGNAL_BITS;

/// The SIGNAL field's interleaver (48 coded bits, BPSK), built once per
/// process — the field is decoded on every frame, so its hot path must
/// not allocate.
fn signal_interleaver() -> &'static Interleaver {
    static TABLE: OnceLock<Interleaver> = OnceLock::new();
    TABLE.get_or_init(|| Interleaver::new(SIGNAL_CODED_BITS, 1))
}

/// Builds the 24 SIGNAL bits for a frame.
///
/// # Panics
///
/// Panics if `length_bytes` exceeds the 12-bit LENGTH field (4095).
pub fn signal_bits(rate: DataRate, length_bytes: usize) -> [u8; SIGNAL_BITS] {
    assert!(length_bytes <= 0xFFF, "LENGTH field is 12 bits, got {length_bytes}");
    let mut bits = [0u8; SIGNAL_BITS];
    bits[..4].copy_from_slice(&rate.signal_bits());
    // bits[4] is the reserved bit; LENGTH is LSB first (Clause 17.3.4.3).
    for i in 0..12 {
        bits[5 + i] = ((length_bytes >> i) & 1) as u8;
    }
    bits[17] = bits[..17].iter().fold(0u8, |p, &b| p ^ b); // even parity
    // bits[18..24] are the six tail zeros.
    bits
}

/// Parses 24 decoded SIGNAL bits.
///
/// # Errors
///
/// [`PhyError::SignalParity`] on a parity failure,
/// [`PhyError::ReservedRate`] if the RATE pattern is reserved.
pub fn parse_signal_bits(bits: &[u8; SIGNAL_BITS]) -> Result<(DataRate, usize), PhyError> {
    let parity = bits[..18].iter().fold(0u8, |p, &b| p ^ b);
    if parity != 0 {
        return Err(PhyError::SignalParity);
    }
    let rate = DataRate::from_signal_bits([bits[0], bits[1], bits[2], bits[3]])
        .ok_or(PhyError::ReservedRate)?;
    let length = read_field(bits, 5, 12) as usize;
    Ok((rate, length))
}

/// Parses a SIGNAL bit stream of arbitrary length — the panic-free entry
/// point for untrusted input (fuzzers, corrupted captures).
///
/// # Errors
///
/// [`PhyError::FrameTooShort`] when fewer than [`SIGNAL_BITS`] bits are
/// given; otherwise the parity/rate errors of [`parse_signal_bits`].
pub fn parse_signal_slice(bits: &[u8]) -> Result<(DataRate, usize), PhyError> {
    if bits.len() < SIGNAL_BITS {
        return Err(PhyError::FrameTooShort { got: bits.len(), need: SIGNAL_BITS });
    }
    let arr: [u8; SIGNAL_BITS] = bits[..SIGNAL_BITS].try_into().expect("length checked");
    parse_signal_bits(&arr)
}

/// Encodes the SIGNAL bits to 48 BPSK constellation points (rate 1/2,
/// interleaved) ready for [`crate::ofdm::FreqSymbol::assemble`] —
/// allocation-free, everything on the stack.
pub fn encode_signal_points(rate: DataRate, length_bytes: usize) -> [Complex; SIGNAL_CODED_BITS] {
    let bits = signal_bits(rate, length_bytes);
    let mut coded = [0u8; SIGNAL_CODED_BITS];
    ConvEncoder::new().encode_to_slice(&bits, &mut coded);
    let mut interleaved = [0u8; SIGNAL_CODED_BITS];
    signal_interleaver().interleave_to_slice(&coded, &mut interleaved);
    let mut points = [Complex::ZERO; SIGNAL_CODED_BITS];
    for (slot, &b) in points.iter_mut().zip(&interleaved) {
        *slot = Modulation::Bpsk.map(&[b]);
    }
    points
}

/// [`encode_signal_points`] as an owned `Vec` (API compatibility).
pub fn encode_signal_symbol(rate: DataRate, length_bytes: usize) -> Vec<Complex> {
    encode_signal_points(rate, length_bytes).to_vec()
}

/// Decodes 48 equalised SIGNAL points back to `(rate, length)`.
///
/// `weight` is the LLR reliability scale (uniform across the symbol is
/// fine for the SIGNAL field).
///
/// # Errors
///
/// Propagates the parity/rate errors of [`parse_signal_bits`].
pub fn decode_signal_symbol(points: &[Complex; 48], weight: f64) -> Result<(DataRate, usize), PhyError> {
    let mut llrs = [0f64; SIGNAL_CODED_BITS];
    for (p, slot) in points.iter().zip(llrs.chunks_exact_mut(1)) {
        Modulation::Bpsk.soft_demap_to_slice(*p, weight, slot);
    }
    let mut deinterleaved = [0f64; SIGNAL_CODED_BITS];
    signal_interleaver().deinterleave_soft_to_slice(&llrs, &mut deinterleaved);
    let mut traceback = [0u64; SIGNAL_BITS];
    let mut bits = [0u8; SIGNAL_BITS];
    ViterbiDecoder::new().decode_to_slices(&deinterleaved, true, &mut traceback, &mut bits);
    parse_signal_bits(&bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_layout() {
        let bits = signal_bits(DataRate::Mbps24, 1024);
        assert_eq!(&bits[..4], &DataRate::Mbps24.signal_bits());
        assert_eq!(bits[4], 0);
        assert_eq!(read_field(&bits, 5, 12), 1024);
        assert_eq!(&bits[18..], &[bits[17] ^ bits[17], 0, 0, 0, 0, 0][..]); // tail zeros
    }

    #[test]
    fn parity_is_even() {
        for rate in DataRate::ALL {
            for len in [0usize, 1, 77, 1024, 4095] {
                let bits = signal_bits(rate, len);
                let ones: u32 = bits[..18].iter().map(|&b| b as u32).sum();
                assert_eq!(ones % 2, 0, "{rate} len {len}");
            }
        }
    }

    #[test]
    fn roundtrip_through_constellation() {
        for rate in DataRate::ALL {
            let points = encode_signal_symbol(rate, 1500);
            let arr: [Complex; 48] = points.try_into().expect("48 points");
            let (r, l) = decode_signal_symbol(&arr, 1.0).expect("clean decode");
            assert_eq!(r, rate);
            assert_eq!(l, 1500);
        }
    }

    #[test]
    fn corrupted_parity_is_detected() {
        let mut bits = signal_bits(DataRate::Mbps12, 100);
        bits[6] ^= 1;
        assert_eq!(parse_signal_bits(&bits), Err(PhyError::SignalParity));
    }

    #[test]
    fn reserved_rate_is_detected() {
        let mut bits = signal_bits(DataRate::Mbps12, 100);
        // Overwrite RATE with a reserved pattern (0000) and fix parity.
        let old_parity: u8 = bits[..18].iter().fold(0, |p, &b| p ^ b);
        bits[0] = 0;
        bits[1] = 0;
        bits[2] = 0;
        bits[3] = 0;
        let new_parity: u8 = bits[..18].iter().fold(0, |p, &b| p ^ b);
        bits[17] ^= old_parity ^ new_parity;
        assert_eq!(parse_signal_bits(&bits), Err(PhyError::ReservedRate));
    }

    #[test]
    fn survives_moderate_noise() {
        let points = encode_signal_symbol(DataRate::Mbps54, 2047);
        let mut arr: [Complex; 48] = points.try_into().expect("48 points");
        // Attenuate and perturb a few points; rate-1/2 BPSK is robust.
        for (i, p) in arr.iter_mut().enumerate() {
            let jitter = if i % 7 == 0 { -0.6 } else { 0.2 };
            *p += Complex::new(jitter, -jitter / 2.0);
        }
        let (r, l) = decode_signal_symbol(&arr, 1.0).expect("decode under noise");
        assert_eq!(r, DataRate::Mbps54);
        assert_eq!(l, 2047);
    }

    #[test]
    #[should_panic(expected = "12 bits")]
    fn oversized_length_panics() {
        signal_bits(DataRate::Mbps6, 5000);
    }

    #[test]
    fn slice_parser_rejects_short_input_without_panicking() {
        assert!(matches!(
            parse_signal_slice(&[1, 0, 1]),
            Err(PhyError::FrameTooShort { got: 3, need: SIGNAL_BITS })
        ));
        let bits = signal_bits(DataRate::Mbps24, 321);
        assert_eq!(parse_signal_slice(&bits), Ok((DataRate::Mbps24, 321)));
    }
}
