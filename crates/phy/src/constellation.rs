//! Gray-mapped constellations of IEEE 802.11a (Clause 17.3.5.8) and their
//! max-log soft demappers.
//!
//! All constellations are normalised to unit average energy by the
//! standard's `K_MOD` factors, so the minimum constellation distance `D_m`
//! shrinks as the modulation order grows — the quantity the CoS subcarrier
//! selector compares per-subcarrier EVM against (`EVM > D_m / 2` ⇒ the
//! subcarrier is error-prone; paper §III-D).

use cos_dsp::Complex;

/// A subcarrier modulation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Modulation {
    /// 1 bit per subcarrier.
    Bpsk,
    /// 2 bits per subcarrier.
    Qpsk,
    /// 4 bits per subcarrier.
    Qam16,
    /// 6 bits per subcarrier.
    Qam64,
}

/// Per-axis Gray level tables from Table 17-9..17-12: `LEVELS[g]` is the
/// amplitude for Gray-coded bit group `g` (bits MSB-first within the group).
const BPSK_LEVELS: [f64; 2] = [-1.0, 1.0];
const QAM16_LEVELS: [f64; 4] = [-3.0, -1.0, 3.0, 1.0]; // 00,01,10,11
const QAM64_LEVELS: [f64; 8] = [-7.0, -5.0, -1.0, -3.0, 7.0, 5.0, 1.0, 3.0]; // 000..111

impl Modulation {
    /// All modulations, lowest order first.
    pub const ALL: [Modulation; 4] = [
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
    ];

    /// Coded bits per subcarrier symbol (`N_BPSC`).
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// The normalisation factor `K_MOD` (Table 17-8).
    pub fn kmod(self) -> f64 {
        match self {
            Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 1.0 / 2f64.sqrt(),
            Modulation::Qam16 => 1.0 / 10f64.sqrt(),
            Modulation::Qam64 => 1.0 / 42f64.sqrt(),
        }
    }

    /// Number of constellation points `M`.
    pub fn points_count(self) -> usize {
        1 << self.bits_per_symbol()
    }

    /// The minimum distance `D_m` between constellation points (after
    /// normalisation); adjacent levels differ by 2·`K_MOD`.
    pub fn min_distance(self) -> f64 {
        2.0 * self.kmod()
    }

    /// The energy of the lowest-energy constellation point. For QAM the
    /// inner points carry far less energy than average (16QAM: 0.2,
    /// 64QAM: ≈ 0.048), which bounds how well a silence symbol can be
    /// told apart from a *transmitted* symbol by energy detection — the
    /// constraint behind CoS's modulation-aware detectability floor.
    pub fn min_point_energy(self) -> f64 {
        // The innermost point sits at the smallest |level| on each axis
        // (±1 in every table), so no enumeration of the constellation —
        // this runs per frame in the detector's threshold computation.
        let min_axis = self
            .axis_levels()
            .iter()
            .fold(f64::INFINITY, |m, &l| m.min(l.abs()))
            * self.kmod();
        let e = min_axis * min_axis;
        if self == Modulation::Bpsk {
            e
        } else {
            2.0 * e
        }
    }

    /// The average constellation energy after `K_MOD` normalisation —
    /// exactly 1 by construction (Table 17-8), but computed from the
    /// mapping so the EVM denominator can never drift from it. Sums in
    /// bit-pattern order without materialising the point list.
    pub fn average_energy(self) -> f64 {
        let n = self.bits_per_symbol();
        let mut sum = 0.0;
        for idx in 0..self.points_count() {
            let mut bits = [0u8; 6];
            for (i, b) in bits[..n].iter_mut().enumerate() {
                *b = ((idx >> (n - 1 - i)) & 1) as u8;
            }
            sum += self.map(&bits[..n]).norm_sqr();
        }
        sum / self.points_count() as f64
    }

    /// The per-axis amplitude levels *before* `K_MOD` scaling, indexed by
    /// the Gray bit group read MSB-first.
    fn axis_levels(self) -> &'static [f64] {
        match self {
            Modulation::Bpsk | Modulation::Qpsk => &BPSK_LEVELS,
            Modulation::Qam16 => &QAM16_LEVELS,
            Modulation::Qam64 => &QAM64_LEVELS,
        }
    }

    /// Bits per axis (0 for the Q axis of BPSK).
    fn bits_per_axis(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 1,
            Modulation::Qam16 => 2,
            Modulation::Qam64 => 3,
        }
    }

    /// Maps `N_BPSC` coded bits (first bit = `b0`, the standard's table
    /// order) to a normalised constellation point.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != N_BPSC` or any bit is not 0/1.
    pub fn map(self, bits: &[u8]) -> Complex {
        let n = self.bits_per_symbol();
        assert_eq!(bits.len(), n, "expected {n} bits for {self}");
        for &b in bits {
            assert!(b <= 1, "bits must be 0 or 1, got {b}");
        }
        let ba = self.bits_per_axis();
        let group = |slice: &[u8]| slice.iter().fold(0usize, |g, &b| (g << 1) | b as usize);
        let levels = self.axis_levels();
        let i = levels[group(&bits[..ba])];
        let q = if self == Modulation::Bpsk {
            0.0
        } else {
            levels[group(&bits[ba..])]
        };
        Complex::new(i, q).scale(self.kmod())
    }

    /// All `M` normalised constellation points, in bit-pattern order
    /// (`b0..b_{n-1}` as the binary digits of the index, MSB first).
    pub fn points(self) -> Vec<Complex> {
        let n = self.bits_per_symbol();
        (0..self.points_count())
            .map(|idx| {
                let bits: Vec<u8> = (0..n).map(|i| ((idx >> (n - 1 - i)) & 1) as u8).collect();
                self.map(&bits)
            })
            .collect()
    }

    /// Hard-decides the nearest constellation point, appending its bits
    /// to `out` in transmit order.
    pub fn hard_demap_into(self, y: Complex, out: &mut Vec<u8>) {
        let ba = self.bits_per_axis();
        let start = out.len();
        out.resize(start + self.bits_per_symbol(), 0);
        let bits = &mut out[start..];
        self.axis_hard(y.re, &mut bits[..ba]);
        if self != Modulation::Bpsk {
            self.axis_hard(y.im, &mut bits[ba..]);
        }
    }

    /// Hard-decides the nearest constellation point, returning its bits.
    pub fn hard_demap(self, y: Complex) -> Vec<u8> {
        let mut bits = Vec::with_capacity(self.bits_per_symbol());
        self.hard_demap_into(y, &mut bits);
        bits
    }

    /// Hard-decides the nearest constellation point, returning the point.
    pub fn nearest_point(self, y: Complex) -> Complex {
        let mut bits = [0u8; 6];
        let bits = &mut bits[..self.bits_per_symbol()];
        let ba = self.bits_per_axis();
        self.axis_hard(y.re, &mut bits[..ba]);
        if self != Modulation::Bpsk {
            self.axis_hard(y.im, &mut bits[ba..]);
        }
        self.map(bits)
    }

    fn axis_hard(self, value: f64, out: &mut [u8]) {
        let levels = self.axis_levels();
        let scaled = value / self.kmod();
        let best = levels
            .iter()
            .enumerate()
            .min_by(|a, b| {
                let da = (a.1 - scaled).abs();
                let db = (b.1 - scaled).abs();
                da.partial_cmp(&db).expect("levels are finite")
            })
            .map(|(g, _)| g)
            .expect("level table is non-empty");
        let width = out.len();
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = ((best >> (width - 1 - i)) & 1) as u8;
        }
    }

    /// Max-log per-bit LLRs for an equalised symbol `y_eq` with channel
    /// reliability `weight = |H|² / σ²` (paper Eq. 8).
    ///
    /// Positive LLR ⇒ bit more likely **0** (the convention of
    /// [`cos_fec::viterbi`]). LLRs are appended to `out` in transmit order
    /// `b0..b_{n-1}`.
    pub fn soft_demap(self, y_eq: Complex, weight: f64, out: &mut Vec<f64>) {
        let start = out.len();
        out.resize(start + self.bits_per_symbol(), 0.0);
        self.soft_demap_to_slice(y_eq, weight, &mut out[start..]);
    }

    /// [`Modulation::soft_demap`] writing into a caller-owned slice of
    /// exactly `bits_per_symbol()` LLRs — the allocation-free core.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.bits_per_symbol()`.
    pub fn soft_demap_to_slice(self, y_eq: Complex, weight: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.bits_per_symbol(), "one LLR slot per coded bit");
        let ba = self.bits_per_axis();
        self.axis_soft(y_eq.re, weight, &mut out[..ba]);
        if self != Modulation::Bpsk {
            self.axis_soft(y_eq.im, weight, &mut out[ba..]);
        }
    }

    /// Per-axis max-log bit metrics: for each bit position the difference
    /// of squared distances to the nearest level with that bit 1 vs 0.
    fn axis_soft(self, value: f64, weight: f64, out: &mut [f64]) {
        let levels = self.axis_levels();
        let k = self.kmod();
        let bits = out.len();
        for (i, slot) in out.iter_mut().enumerate() {
            let shift = bits - 1 - i;
            let mut d0 = f64::INFINITY;
            let mut d1 = f64::INFINITY;
            for (g, &level) in levels.iter().enumerate() {
                let d = value - level * k;
                let d2 = d * d;
                if (g >> shift) & 1 == 0 {
                    d0 = d0.min(d2);
                } else {
                    d1 = d1.min(d2);
                }
            }
            *slot = weight * (d1 - d0);
        }
    }
}

impl std::fmt::Display for Modulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "16QAM",
            Modulation::Qam64 => "64QAM",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_average_energy() {
        for m in Modulation::ALL {
            let pts = m.points();
            let energy: f64 = pts.iter().map(|p| p.norm_sqr()).sum::<f64>() / pts.len() as f64;
            assert!((energy - 1.0).abs() < 1e-12, "{m} energy {energy}");
        }
    }

    #[test]
    fn bpsk_mapping_matches_standard() {
        assert_eq!(Modulation::Bpsk.map(&[0]), Complex::new(-1.0, 0.0));
        assert_eq!(Modulation::Bpsk.map(&[1]), Complex::new(1.0, 0.0));
    }

    #[test]
    fn qpsk_mapping_matches_standard() {
        let k = 1.0 / 2f64.sqrt();
        assert_eq!(Modulation::Qpsk.map(&[0, 0]), Complex::new(-k, -k));
        assert_eq!(Modulation::Qpsk.map(&[1, 0]), Complex::new(k, -k));
        assert_eq!(Modulation::Qpsk.map(&[0, 1]), Complex::new(-k, k));
        assert_eq!(Modulation::Qpsk.map(&[1, 1]), Complex::new(k, k));
    }

    #[test]
    fn qam16_gray_levels_match_standard() {
        // Table 17-11: b0b1 ∈ {00,01,11,10} → I ∈ {-3,-1,1,3}.
        let k = 1.0 / 10f64.sqrt();
        let cases = [([0, 0], -3.0), ([0, 1], -1.0), ([1, 1], 1.0), ([1, 0], 3.0)];
        for (b, level) in cases {
            let p = Modulation::Qam16.map(&[b[0], b[1], 0, 0]);
            assert!((p.re - level * k).abs() < 1e-12, "bits {b:?}");
        }
    }

    #[test]
    fn qam64_gray_levels_match_standard() {
        // Table 17-12: b0b1b2 ∈ {000,001,011,010,110,111,101,100} → -7..7.
        let k = 1.0 / 42f64.sqrt();
        let cases = [
            ([0, 0, 0], -7.0),
            ([0, 0, 1], -5.0),
            ([0, 1, 1], -3.0),
            ([0, 1, 0], -1.0),
            ([1, 1, 0], 1.0),
            ([1, 1, 1], 3.0),
            ([1, 0, 1], 5.0),
            ([1, 0, 0], 7.0),
        ];
        for (b, level) in cases {
            let p = Modulation::Qam64.map(&[b[0], b[1], b[2], 0, 0, 0]);
            assert!((p.re - level * k).abs() < 1e-12, "bits {b:?} got {}", p.re / k);
        }
    }

    #[test]
    fn gray_property_neighbours_differ_by_one_bit() {
        // Sort points of each axis by amplitude; adjacent bit groups must
        // differ in exactly one bit (Gray coding).
        for m in [Modulation::Qam16, Modulation::Qam64] {
            let levels = m.axis_levels();
            let mut order: Vec<usize> = (0..levels.len()).collect();
            order.sort_by(|&a, &b| levels[a].partial_cmp(&levels[b]).expect("finite"));
            for pair in order.windows(2) {
                let diff = (pair[0] ^ pair[1]).count_ones();
                assert_eq!(diff, 1, "{m}: groups {pair:?}");
            }
        }
    }

    #[test]
    fn hard_demap_inverts_map() {
        for m in Modulation::ALL {
            let n = m.bits_per_symbol();
            for idx in 0..m.points_count() {
                let bits: Vec<u8> = (0..n).map(|i| ((idx >> (n - 1 - i)) & 1) as u8).collect();
                let p = m.map(&bits);
                assert_eq!(m.hard_demap(p), bits, "{m} idx {idx}");
            }
        }
    }

    #[test]
    fn hard_demap_tolerates_small_noise() {
        for m in Modulation::ALL {
            let eps = m.min_distance() * 0.3;
            for idx in 0..m.points_count() {
                let n = m.bits_per_symbol();
                let bits: Vec<u8> = (0..n).map(|i| ((idx >> (n - 1 - i)) & 1) as u8).collect();
                let p = m.map(&bits) + Complex::new(eps, -eps * 0.5);
                assert_eq!(m.hard_demap(p), bits, "{m} idx {idx}");
            }
        }
    }

    #[test]
    fn soft_demap_signs_match_hard_decision_on_clean_points() {
        for m in Modulation::ALL {
            for idx in 0..m.points_count() {
                let n = m.bits_per_symbol();
                let bits: Vec<u8> = (0..n).map(|i| ((idx >> (n - 1 - i)) & 1) as u8).collect();
                let p = m.map(&bits);
                let mut llrs = Vec::new();
                m.soft_demap(p, 1.0, &mut llrs);
                assert_eq!(llrs.len(), n);
                for (i, &llr) in llrs.iter().enumerate() {
                    if bits[i] == 0 {
                        assert!(llr > 0.0, "{m} idx {idx} bit {i}: llr {llr}");
                    } else {
                        assert!(llr < 0.0, "{m} idx {idx} bit {i}: llr {llr}");
                    }
                }
            }
        }
    }

    #[test]
    fn soft_demap_scales_with_weight() {
        let m = Modulation::Qam16;
        let y = Complex::new(0.2, -0.4);
        let mut a = Vec::new();
        let mut b = Vec::new();
        m.soft_demap(y, 1.0, &mut a);
        m.soft_demap(y, 4.0, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((y - 4.0 * x).abs() < 1e-12);
        }
    }

    #[test]
    fn min_point_energy_values() {
        assert!((Modulation::Bpsk.min_point_energy() - 1.0).abs() < 1e-12);
        assert!((Modulation::Qpsk.min_point_energy() - 1.0).abs() < 1e-12);
        assert!((Modulation::Qam16.min_point_energy() - 0.2).abs() < 1e-12);
        assert!((Modulation::Qam64.min_point_energy() - 2.0 / 42.0).abs() < 1e-12);
    }

    #[test]
    fn min_distance_shrinks_with_order() {
        let d: Vec<f64> = Modulation::ALL.iter().map(|m| m.min_distance()).collect();
        for pair in d.windows(2) {
            assert!(pair[1] < pair[0]);
        }
    }

    #[test]
    fn nearest_point_is_a_constellation_point() {
        let m = Modulation::Qam64;
        let pts = m.points();
        let y = Complex::new(0.11, -0.73);
        let p = m.nearest_point(y);
        assert!(pts.iter().any(|&q| (q - p).norm() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "expected 4 bits")]
    fn wrong_bit_count_panics() {
        Modulation::Qam16.map(&[0, 1]);
    }
}
