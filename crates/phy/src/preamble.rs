//! The 802.11a PLCP preamble (Clause 17.3.3): ten repetitions of the short
//! training symbol followed by a double guard interval and two long
//! training symbols.
//!
//! The simulator assumes ideal timing synchronisation (a documented
//! substitution for Sora's packet detector), so the short training field is
//! generated for waveform realism and power measurement while the **long
//! training field** does the real work: per-subcarrier channel estimation
//! and noise-variance estimation.

use crate::ofdm::FreqSymbol;
use crate::subcarriers::{bin_of, FFT_SIZE};
use cos_dsp::fft::plan;
use cos_dsp::Complex;

/// Samples in the short training field (10 × 16).
pub const STF_LEN: usize = 160;
/// Samples in the long training field (32 GI + 2 × 64).
pub const LTF_LEN: usize = 160;
/// Total preamble length in samples (16 µs at 20 MHz).
pub const PREAMBLE_LEN: usize = STF_LEN + LTF_LEN;

/// The long-training-symbol subcarrier sequence `L_{-26..26}` (Clause
/// 17.3.3), DC = 0.
pub const LTF_SEQ: [i8; 53] = [
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, // -26..-1
    0, // DC
    1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1, // 1..26
];

/// The value of the long-training sequence on subcarrier `idx`
/// (`-26..=26`); 0 outside the used band.
pub fn ltf_value(idx: i32) -> f64 {
    if !(-26..=26).contains(&idx) {
        return 0.0;
    }
    LTF_SEQ[(idx + 26) as usize] as f64
}

/// The frequency-domain long training symbol.
pub fn ltf_freq_symbol() -> FreqSymbol {
    let mut bins = [Complex::ZERO; FFT_SIZE];
    for idx in -26..=26 {
        if idx == 0 {
            continue;
        }
        bins[bin_of(idx)] = Complex::new(ltf_value(idx), 0.0);
    }
    FreqSymbol(bins)
}

/// The frequency-domain short training symbol (12 active subcarriers,
/// scaled by √(13/6) for unit average power over used bins).
pub fn stf_freq_symbol() -> FreqSymbol {
    let scale = (13.0 / 6.0f64).sqrt();
    let plus = Complex::new(1.0, 1.0).scale(scale); // √(13/6)·(1+j)
    let minus = -plus;
    let mut bins = [Complex::ZERO; FFT_SIZE];
    let actives: [(i32, Complex); 12] = [
        (-24, plus),
        (-20, minus),
        (-16, plus),
        (-12, minus),
        (-8, minus),
        (-4, plus),
        (4, minus),
        (8, minus),
        (12, plus),
        (16, plus),
        (20, plus),
        (24, plus),
    ];
    for (idx, v) in actives {
        bins[bin_of(idx)] = v;
    }
    FreqSymbol(bins)
}

/// Generates the full 320-sample preamble waveform.
pub fn generate() -> Vec<Complex> {
    let mut samples = Vec::with_capacity(PREAMBLE_LEN);
    generate_into(&mut samples);
    samples
}

/// [`generate`] writing into a caller-owned buffer, which is fully
/// overwritten.
pub fn generate_into(samples: &mut Vec<Complex>) {
    let fft = plan(FFT_SIZE);

    // Short training field: IFFT of the STF symbol is periodic with period
    // 16; transmit 160 samples of it.
    let mut stf_time = stf_freq_symbol().0;
    fft.inverse(&mut stf_time);
    samples.clear();
    samples.reserve(PREAMBLE_LEN);
    for i in 0..STF_LEN {
        samples.push(stf_time[i % FFT_SIZE]);
    }

    // Long training field: 32-sample guard (the tail of the LTF body) then
    // two identical 64-sample bodies.
    let mut ltf_time = ltf_freq_symbol().0;
    fft.inverse(&mut ltf_time);
    samples.extend_from_slice(&ltf_time[FFT_SIZE - 32..]);
    samples.extend_from_slice(&ltf_time);
    samples.extend_from_slice(&ltf_time);
    debug_assert_eq!(samples.len(), PREAMBLE_LEN);
}

/// The sample ranges of the two LTF bodies within the preamble.
pub fn ltf_body_ranges() -> [std::ops::Range<usize>; 2] {
    let first = STF_LEN + 32;
    [first..first + FFT_SIZE, first + FFT_SIZE..first + 2 * FFT_SIZE]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ofdm::OfdmEngine;

    #[test]
    fn preamble_is_320_samples() {
        assert_eq!(generate().len(), 320);
    }

    #[test]
    fn ltf_sequence_is_pm_one_on_used_bins() {
        for idx in -26..=26i32 {
            let v = ltf_value(idx);
            if idx == 0 {
                assert_eq!(v, 0.0);
            } else {
                assert!(v == 1.0 || v == -1.0, "idx {idx}: {v}");
            }
        }
        assert_eq!(ltf_value(30), 0.0);
        assert_eq!(ltf_value(-31), 0.0);
    }

    #[test]
    fn ltf_bodies_are_identical() {
        let p = generate();
        let [r1, r2] = ltf_body_ranges();
        assert_eq!(&p[r1], &p[r2]);
    }

    #[test]
    fn stf_is_periodic_with_16_samples() {
        let p = generate();
        for i in 0..(STF_LEN - 16) {
            assert!((p[i] - p[i + 16]).norm() < 1e-12);
        }
    }

    #[test]
    fn ltf_body_demodulates_to_the_sequence() {
        let p = generate();
        let [r1, _] = ltf_body_ranges();
        let engine = OfdmEngine::new();
        let sym = engine.demodulate_body(&p[r1]);
        for idx in -26..=26i32 {
            if idx == 0 {
                continue;
            }
            let got = sym.0[bin_of(idx)];
            assert!((got.re - ltf_value(idx)).abs() < 1e-9, "idx {idx}");
            assert!(got.im.abs() < 1e-9);
        }
    }

    #[test]
    fn stf_active_subcarriers_every_fourth() {
        let sym = stf_freq_symbol();
        let active: Vec<i32> = (-26..=26)
            .filter(|&idx| idx != 0 && sym.0[bin_of(idx)].norm() > 0.0)
            .collect();
        assert_eq!(active.len(), 12);
        for idx in &active {
            assert_eq!(idx % 4, 0, "STF subcarrier {idx} not a multiple of 4");
        }
    }

    #[test]
    fn stf_power_is_normalised() {
        // Σ|S_k|² over the 12 active bins = 12 · (13/6 · 2) = 52, matching
        // the 52 used bins of data symbols.
        let sym = stf_freq_symbol();
        let power: f64 = sym.0.iter().map(|x| x.norm_sqr()).sum();
        assert!((power - 52.0).abs() < 1e-9, "STF power {power}");
    }
}
