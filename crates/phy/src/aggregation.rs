//! Frame aggregation — "the frame aggregation scheme is adopted"
//! (paper §IV-B).
//!
//! An aggregate packs several MPDUs into one PSDU behind a single PHY
//! preamble, A-MPDU style: each subframe is a 4-byte delimiter
//! (12-bit length, CRC-8, signature byte) followed by the MPDU (payload +
//! FCS) and padding to a 4-byte boundary. Corruption of one subframe does
//! not doom the rest: the de-aggregator re-synchronises by scanning for
//! the next valid delimiter, so reception is counted per subframe — the
//! right PRR granularity when silences consume code redundancy.

use crate::error::PhyError;
use cos_fec::Crc32;

/// The delimiter signature byte (ASCII 'N', as in 802.11n).
pub const SIGNATURE: u8 = 0x4E;
/// Delimiter length in bytes.
pub const DELIMITER_LEN: usize = 4;
/// Maximum MPDU length representable in the 12-bit field.
pub const MAX_MPDU_LEN: usize = 0xFFF;

/// CRC-8 over the first two delimiter bytes (polynomial 0x07, init 0).
fn crc8(bytes: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &b in bytes {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 { (crc << 1) ^ 0x07 } else { crc << 1 };
        }
    }
    crc
}

/// Builds the 4-byte delimiter for an MPDU of `len` bytes.
fn delimiter(len: usize) -> [u8; DELIMITER_LEN] {
    debug_assert!(len <= MAX_MPDU_LEN);
    let b0 = ((len >> 8) & 0x0F) as u8;
    let b1 = (len & 0xFF) as u8;
    [b0, b1, crc8(&[b0, b1]), SIGNATURE]
}

/// Parses a delimiter; returns the MPDU length if it is valid.
fn parse_delimiter(bytes: &[u8]) -> Option<usize> {
    if bytes.len() < DELIMITER_LEN || bytes[3] != SIGNATURE {
        return None;
    }
    if crc8(&bytes[..2]) != bytes[2] {
        return None;
    }
    Some(((bytes[0] as usize & 0x0F) << 8) | bytes[1] as usize)
}

/// Aggregates MPDU payloads into one PSDU. Each payload gets its own
/// FCS, so subframes are individually verifiable.
///
/// # Errors
///
/// [`PhyError::EmptyAggregate`] when the MPDU list is empty and
/// [`PhyError::MpduTooLong`] when `payload + 4` (the FCS) exceeds
/// [`MAX_MPDU_LEN`] — both can originate from untrusted upper-layer
/// traffic, so neither panics.
pub fn aggregate(payloads: &[Vec<u8>]) -> Result<Vec<u8>, PhyError> {
    if payloads.is_empty() {
        return Err(PhyError::EmptyAggregate);
    }
    let crc = Crc32::new();
    let mut psdu = Vec::new();
    for payload in payloads {
        let mpdu = crc.append(payload);
        if mpdu.len() > MAX_MPDU_LEN {
            return Err(PhyError::MpduTooLong { len: mpdu.len(), max: MAX_MPDU_LEN });
        }
        psdu.extend_from_slice(&delimiter(mpdu.len()));
        psdu.extend_from_slice(&mpdu);
        // Pad to a 4-byte boundary (padding bytes are zero).
        while psdu.len() % 4 != 0 {
            psdu.push(0);
        }
    }
    Ok(psdu)
}

/// De-aggregates a received PSDU into per-subframe results: `Some(payload)`
/// for subframes that passed their FCS, `None` for corrupted ones. The
/// scanner re-synchronises on the next valid delimiter after corruption.
pub fn deaggregate(psdu: &[u8]) -> Vec<Option<Vec<u8>>> {
    let crc = Crc32::new();
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + DELIMITER_LEN <= psdu.len() {
        match parse_delimiter(&psdu[pos..]) {
            Some(len) if pos + DELIMITER_LEN + len <= psdu.len() => {
                let mpdu = &psdu[pos + DELIMITER_LEN..pos + DELIMITER_LEN + len];
                out.push(crc.verify(mpdu).map(<[u8]>::to_vec));
                pos += DELIMITER_LEN + len;
                // Skip the padding.
                pos = pos.next_multiple_of(4);
            }
            _ => {
                // Not a valid delimiter here: resync scan, 4-byte aligned
                // like hardware de-aggregators.
                pos += 4;
            }
        }
    }
    out
}

/// Counts delivered subframes out of an expectation — the per-subframe
/// reception rate used with aggregation.
///
/// # Errors
///
/// [`PhyError::LengthMismatch`] if more subframes were decoded than
/// expected (indicates a resync bug or malicious input).
pub fn subframe_delivery(
    received: &[Option<Vec<u8>>],
    expected: usize,
) -> Result<(usize, usize), PhyError> {
    if received.len() > expected {
        return Err(PhyError::LengthMismatch { need: expected, got: received.len() });
    }
    let ok = received.iter().filter(|r| r.is_some()).count();
    Ok((ok, expected))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mpdus() -> Vec<Vec<u8>> {
        vec![
            (0..100u8).collect(),
            b"second subframe".to_vec(),
            vec![0xFF; 257],
            b"tail".to_vec(),
        ]
    }

    #[test]
    fn roundtrip_preserves_all_subframes() {
        let psdu = aggregate(&mpdus()).expect("valid MPDUs");
        let got = deaggregate(&psdu);
        assert_eq!(got.len(), 4);
        for (g, want) in got.iter().zip(mpdus()) {
            assert_eq!(g.as_deref(), Some(want.as_slice()));
        }
    }

    #[test]
    fn psdu_is_four_byte_aligned_between_subframes() {
        let psdu = aggregate(&mpdus()).expect("valid MPDUs");
        assert_eq!(psdu.len() % 4, 0);
    }

    #[test]
    fn corrupted_subframe_is_isolated() {
        let mut psdu = aggregate(&mpdus()).expect("valid MPDUs");
        // Corrupt a byte inside the third subframe's MPDU body.
        let second_region = DELIMITER_LEN + 104 + DELIMITER_LEN + 19 + 1 + 20;
        psdu[second_region + 40] ^= 0xA5;
        let got = deaggregate(&psdu);
        let delivered = got.iter().filter(|r| r.is_some()).count();
        assert!(delivered >= 3, "only {delivered} survived a single corrupt byte");
        assert_eq!(got.len(), 4, "all four subframes should still be framed");
    }

    #[test]
    fn corrupted_delimiter_resyncs_on_later_subframes() {
        let mut psdu = aggregate(&mpdus()).expect("valid MPDUs");
        psdu[0] ^= 0xFF; // destroy the first delimiter
        let got = deaggregate(&psdu);
        // First subframe is lost entirely (its delimiter is gone), but the
        // scanner finds later delimiters.
        let delivered = got.iter().filter(|r| r.is_some()).count();
        assert!(delivered >= 2, "resync failed: {delivered}");
    }

    #[test]
    fn delimiter_crc_rejects_bit_flips() {
        let d = delimiter(300);
        assert_eq!(parse_delimiter(&d), Some(300));
        for byte in 0..3 {
            let mut bad = d;
            bad[byte] ^= 0x10;
            assert_eq!(parse_delimiter(&bad), None, "flip in byte {byte} undetected");
        }
    }

    #[test]
    fn single_subframe_aggregate() {
        let psdu = aggregate(&[b"solo".to_vec()]).expect("valid MPDU");
        let got = deaggregate(&psdu);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].as_deref(), Some(&b"solo"[..]));
    }

    #[test]
    fn delivery_counting() {
        let received = vec![Some(vec![1]), None, Some(vec![2])];
        let (ok, total) = subframe_delivery(&received, 4).expect("valid");
        assert_eq!((ok, total), (2, 4));
        assert!(subframe_delivery(&received, 2).is_err());
    }

    #[test]
    fn oversized_mpdu_is_a_typed_error() {
        assert_eq!(
            aggregate(&[vec![0u8; 5000]]),
            Err(PhyError::MpduTooLong { len: 5004, max: MAX_MPDU_LEN })
        );
    }

    #[test]
    fn empty_aggregate_is_a_typed_error() {
        assert_eq!(aggregate(&[]), Err(PhyError::EmptyAggregate));
    }
}
