//! The 64-subcarrier layout of the 20 MHz 802.11a channel
//! (Clause 17.3.5.10): 48 data subcarriers, 4 pilots at ±7/±21, a null DC
//! and 11 guard bins.
//!
//! Two index spaces are used throughout the workspace:
//!
//! * **subcarrier index** `-26..=26` (excluding 0) — the standard's
//!   frequency numbering,
//! * **logical data index** `0..48` — data subcarriers in ascending
//!   frequency order, the numbering the CoS paper uses when it says
//!   "subcarrier 1..48".

/// Total FFT size.
pub const FFT_SIZE: usize = 64;
/// Number of data subcarriers.
pub const NUM_DATA: usize = 48;
/// Number of pilot subcarriers.
pub const NUM_PILOTS: usize = 4;
/// Number of used (data + pilot) subcarriers.
pub const NUM_USED: usize = NUM_DATA + NUM_PILOTS;
/// Cyclic-prefix length in samples (800 ns at 20 MHz).
pub const CP_LEN: usize = 16;
/// Samples per OFDM symbol including the cyclic prefix.
pub const SYMBOL_LEN: usize = FFT_SIZE + CP_LEN;
/// OFDM symbol duration in seconds (4 µs).
pub const SYMBOL_DURATION: f64 = 4e-6;
/// OFDM symbols per second.
pub const SYMBOLS_PER_SECOND: f64 = 1.0 / SYMBOL_DURATION;

/// Pilot subcarrier indices.
pub const PILOT_INDICES: [i32; 4] = [-21, -7, 7, 21];
/// Base pilot values (before the per-symbol polarity `p_n`); the +21 pilot
/// is negated (Clause 17.3.5.9).
pub const PILOT_VALUES: [f64; 4] = [1.0, 1.0, 1.0, -1.0];

/// Converts a subcarrier index (`-32..=31`) to its FFT bin (`0..64`).
///
/// # Panics
///
/// Panics if `idx` is outside `-32..=31`.
pub fn bin_of(idx: i32) -> usize {
    assert!((-32..=31).contains(&idx), "subcarrier index {idx} out of range");
    idx.rem_euclid(FFT_SIZE as i32) as usize
}

/// The 48 data-subcarrier indices in ascending frequency order.
pub fn data_indices() -> [i32; NUM_DATA] {
    let mut out = [0i32; NUM_DATA];
    let mut n = 0;
    for idx in -26..=26 {
        if idx == 0 || PILOT_INDICES.contains(&idx) {
            continue;
        }
        out[n] = idx;
        n += 1;
    }
    debug_assert_eq!(n, NUM_DATA);
    out
}

/// The FFT bins of the 48 data subcarriers, in logical order `0..48`.
pub fn data_bins() -> [usize; NUM_DATA] {
    let mut out = [0usize; NUM_DATA];
    for (slot, idx) in out.iter_mut().zip(data_indices()) {
        *slot = bin_of(idx);
    }
    out
}

/// The FFT bins of the pilot subcarriers.
pub fn pilot_bins() -> [usize; NUM_PILOTS] {
    let mut out = [0usize; NUM_PILOTS];
    for (slot, idx) in out.iter_mut().zip(PILOT_INDICES) {
        *slot = bin_of(idx);
    }
    out
}

/// The FFT bins of all 52 used subcarriers in ascending frequency order
/// (-26..26, skipping DC) — the x-axis of the paper's Fig. 10(a).
pub fn used_bins() -> [usize; NUM_USED] {
    let mut out = [0usize; NUM_USED];
    let mut n = 0;
    for idx in -26..=26 {
        if idx == 0 {
            continue;
        }
        out[n] = bin_of(idx);
        n += 1;
    }
    out
}

/// Maps a logical data index (`0..48`) to its subcarrier index.
///
/// # Panics
///
/// Panics if `logical >= 48`.
pub fn logical_to_index(logical: usize) -> i32 {
    assert!(logical < NUM_DATA, "logical data index {logical} out of range");
    data_indices()[logical]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_add_up() {
        assert_eq!(data_indices().len(), 48);
        assert_eq!(used_bins().len(), 52);
        // 64 bins = 48 data + 4 pilots + 12 null (DC + 11 guards).
        assert_eq!(FFT_SIZE - NUM_USED, 12);
    }

    #[test]
    fn bin_mapping_wraps_negative_indices() {
        assert_eq!(bin_of(1), 1);
        assert_eq!(bin_of(26), 26);
        assert_eq!(bin_of(-1), 63);
        assert_eq!(bin_of(-26), 38);
    }

    #[test]
    fn pilots_are_not_data() {
        let data = data_indices();
        for p in PILOT_INDICES {
            assert!(!data.contains(&p));
        }
        assert!(!data.contains(&0), "DC must be null");
    }

    #[test]
    fn data_indices_are_sorted_and_unique() {
        let d = data_indices();
        for w in d.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(d[0], -26);
        assert_eq!(d[47], 26);
    }

    #[test]
    fn data_and_pilot_bins_are_disjoint() {
        let data = data_bins();
        for pb in pilot_bins() {
            assert!(!data.contains(&pb));
        }
    }

    #[test]
    fn used_bins_cover_data_and_pilots() {
        let used = used_bins();
        for b in data_bins() {
            assert!(used.contains(&b));
        }
        for b in pilot_bins() {
            assert!(used.contains(&b));
        }
    }

    #[test]
    fn logical_round_trip() {
        for (logical, &idx) in data_indices().iter().enumerate() {
            assert_eq!(logical_to_index(logical), idx);
        }
    }

    #[test]
    fn symbol_timing_constants() {
        assert_eq!(SYMBOL_LEN, 80);
        assert_eq!(SYMBOLS_PER_SECOND, 250_000.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_subcarrier_panics() {
        bin_of(40);
    }
}
