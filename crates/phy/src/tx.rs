//! The 802.11a transmit chain, with the pre-IFFT hook CoS needs.
//!
//! [`Transmitter::build_frame`] produces a [`TxFrame`] whose DATA symbols
//! are kept in the **frequency domain**. The CoS power controller inserts
//! silence symbols by calling [`TxFrame::silence`] — which zeroes the
//! corresponding IFFT input, exactly the mechanism of paper Eq. (3) — and
//! only then renders the waveform with [`TxFrame::to_time_samples`].

use crate::frame::{build_data_field_into, payload_to_psdu_into, DataField};
use crate::ofdm::{FreqSymbol, OfdmEngine};
use crate::pipeline::TxWorkspace;
use crate::preamble;
use crate::rates::DataRate;
use crate::signal::encode_signal_points;
use crate::subcarriers::{data_bins, NUM_DATA, SYMBOL_LEN};
use cos_dsp::{Complex, Prbs127};
use cos_fec::FecWorkspace;

/// A fully assembled frame, frequency-domain, ready for silence insertion
/// and waveform rendering.
#[derive(Debug, Clone)]
pub struct TxFrame {
    /// The data rate of the DATA field.
    pub rate: DataRate,
    /// PSDU length in bytes (payload + 4-byte FCS), as put in SIGNAL.
    pub psdu_len: usize,
    /// Scrambler seed used for the DATA field.
    pub scrambler_seed: u8,
    /// The SIGNAL symbol (48 BPSK points, pilot polarity `p_0`).
    pub signal_symbol: FreqSymbol,
    /// The DATA symbols, frequency domain, pilot polarities `p_1..`.
    pub data_symbols: Vec<FreqSymbol>,
    /// The ideal mapped constellation points per DATA symbol (logical
    /// subcarrier order), *before* any silence insertion.
    pub mapped_points: Vec<[Complex; NUM_DATA]>,
    /// Which (symbol, logical subcarrier) positions have been silenced.
    pub silence_mask: Vec<[bool; NUM_DATA]>,
    /// Every intermediate bit stage, for instrumentation.
    pub data_field: DataField,
}

impl TxFrame {
    /// An empty placeholder for workspace initialisation; every field is
    /// fully overwritten by [`Transmitter::build_frame_into`].
    pub fn empty() -> Self {
        TxFrame {
            rate: DataRate::Mbps6,
            psdu_len: 0,
            scrambler_seed: 1,
            signal_symbol: FreqSymbol::empty(),
            data_symbols: Vec::new(),
            mapped_points: Vec::new(),
            silence_mask: Vec::new(),
            data_field: DataField::empty(DataRate::Mbps6),
        }
    }

    /// Number of DATA OFDM symbols.
    pub fn n_data_symbols(&self) -> usize {
        self.data_symbols.len()
    }

    /// Zeroes the transmit power of one data symbol — inserts a silence
    /// symbol at `(symbol, logical_sc)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn silence(&mut self, symbol: usize, logical_sc: usize) {
        assert!(symbol < self.data_symbols.len(), "symbol {symbol} out of range");
        assert!(logical_sc < NUM_DATA, "subcarrier {logical_sc} out of range");
        let bin = data_bins()[logical_sc];
        self.data_symbols[symbol].0[bin] = Complex::ZERO;
        self.silence_mask[symbol][logical_sc] = true;
    }

    /// Whether a position has been silenced.
    pub fn is_silenced(&self, symbol: usize, logical_sc: usize) -> bool {
        self.silence_mask[symbol][logical_sc]
    }

    /// Total silence symbols inserted.
    pub fn silence_count(&self) -> usize {
        self.silence_mask
            .iter()
            .map(|row| row.iter().filter(|&&s| s).count())
            .sum()
    }

    /// Renders the complete frame waveform: preamble, SIGNAL, DATA.
    pub fn to_time_samples(&self) -> Vec<Complex> {
        let mut samples = Vec::new();
        self.to_time_samples_into(&mut samples);
        samples
    }

    /// [`TxFrame::to_time_samples`] writing into a caller-owned buffer,
    /// which is fully overwritten.
    pub fn to_time_samples_into(&self, samples: &mut Vec<Complex>) {
        let engine = OfdmEngine::new();
        preamble::generate_into(samples);
        samples.extend_from_slice(&engine.modulate(&self.signal_symbol));
        for sym in &self.data_symbols {
            samples.extend_from_slice(&engine.modulate(sym));
        }
    }

    /// Frame airtime in seconds.
    pub fn airtime(&self) -> f64 {
        (preamble::PREAMBLE_LEN + (1 + self.n_data_symbols()) * SYMBOL_LEN) as f64 / 20e6
    }
}

/// The 802.11a transmitter.
#[derive(Debug, Clone, Default)]
pub struct Transmitter {
    _private: (),
}

impl Transmitter {
    /// Creates a transmitter.
    pub fn new() -> Self {
        Transmitter::default()
    }

    /// Builds a frame for `payload` (the FCS is appended internally) at
    /// `rate`, scrambling with `scrambler_seed`.
    ///
    /// # Panics
    ///
    /// Panics if the resulting PSDU exceeds the 4095-byte LENGTH field or
    /// the scrambler seed is invalid.
    pub fn build_frame(&self, payload: &[u8], rate: DataRate, scrambler_seed: u8) -> TxFrame {
        let mut psdu = Vec::new();
        payload_to_psdu_into(payload, &mut psdu);
        self.build_frame_from_psdu(&psdu, rate, scrambler_seed)
    }

    /// Builds a frame from an already-framed PSDU (payload + FCS).
    pub fn build_frame_from_psdu(&self, psdu: &[u8], rate: DataRate, scrambler_seed: u8) -> TxFrame {
        let mut frame = TxFrame::empty();
        build_frame_from_psdu_core(psdu, rate, scrambler_seed, &mut frame, &mut FecWorkspace::new());
        frame
    }

    /// [`Transmitter::build_frame`] writing into a caller-owned
    /// [`TxWorkspace`]: `ws.frame` (and the PSDU/FEC scratch behind it) is
    /// fully overwritten; `ws.samples` is untouched until
    /// [`TxWorkspace::render`].
    ///
    /// # Panics
    ///
    /// Panics if the resulting PSDU exceeds the 4095-byte LENGTH field or
    /// the scrambler seed is invalid.
    pub fn build_frame_into(
        &self,
        payload: &[u8],
        rate: DataRate,
        scrambler_seed: u8,
        ws: &mut TxWorkspace,
    ) {
        let TxWorkspace { frame, psdu, fec, .. } = ws;
        payload_to_psdu_into(payload, psdu);
        build_frame_from_psdu_core(psdu, rate, scrambler_seed, frame, fec);
    }

    /// [`Transmitter::build_frame_from_psdu`] writing into a caller-owned
    /// [`TxWorkspace`].
    pub fn build_frame_from_psdu_into(
        &self,
        psdu: &[u8],
        rate: DataRate,
        scrambler_seed: u8,
        ws: &mut TxWorkspace,
    ) {
        let TxWorkspace { frame, fec, .. } = ws;
        build_frame_from_psdu_core(psdu, rate, scrambler_seed, frame, fec);
    }
}

/// The single frame-assembly implementation both the owned and workspace
/// APIs call: fills `frame` from `psdu`, reusing `fec` scratch.
fn build_frame_from_psdu_core(
    psdu: &[u8],
    rate: DataRate,
    scrambler_seed: u8,
    frame: &mut TxFrame,
    fec: &mut FecWorkspace,
) {
    build_data_field_into(psdu, rate, scrambler_seed, &mut frame.data_field, fec);
    let polarity = Prbs127::pilot_polarity();

    frame.rate = rate;
    frame.psdu_len = psdu.len();
    frame.scrambler_seed = scrambler_seed;

    // SIGNAL symbol with pilot polarity p_0.
    let signal_points = encode_signal_points(rate, psdu.len());
    frame.signal_symbol = FreqSymbol::assemble(&signal_points, polarity[0]);

    // DATA symbols: map Ncbps interleaved bits per symbol. Destructure so
    // the interleaved bits can be read while the symbol vectors are
    // rebuilt.
    let TxFrame { data_field, data_symbols, mapped_points, silence_mask, .. } = frame;
    let modulation = rate.modulation();
    let nbpsc = rate.nbpsc();
    data_symbols.clear();
    mapped_points.clear();
    data_symbols.reserve(data_field.n_symbols);
    mapped_points.reserve(data_field.n_symbols);
    for (n, chunk) in data_field.interleaved.chunks_exact(rate.ncbps()).enumerate() {
        let mut points = [Complex::ZERO; NUM_DATA];
        for (sc, bits) in chunk.chunks_exact(nbpsc).enumerate() {
            points[sc] = modulation.map(bits);
        }
        let p = polarity[(n + 1) % Prbs127::PERIOD];
        data_symbols.push(FreqSymbol::assemble(&points, p));
        mapped_points.push(points);
    }

    silence_mask.clear();
    silence_mask.resize(data_field.n_symbols, [false; NUM_DATA]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subcarriers::CP_LEN;

    #[test]
    fn frame_structure_sizes() {
        let tx = Transmitter::new();
        let frame = tx.build_frame(&[0u8; 1020], DataRate::Mbps24, 0x5D);
        assert_eq!(frame.psdu_len, 1024);
        assert_eq!(frame.n_data_symbols(), 86);
        let samples = frame.to_time_samples();
        assert_eq!(samples.len(), 320 + 80 * (1 + 86));
    }

    #[test]
    fn silence_zeroes_exactly_one_bin() {
        let tx = Transmitter::new();
        let mut frame = tx.build_frame(b"payload", DataRate::Mbps12, 0x5D);
        let before = frame.data_symbols[0].clone();
        frame.silence(0, 10);
        let after = &frame.data_symbols[0];
        let bin = data_bins()[10];
        assert_eq!(after.0[bin], Complex::ZERO);
        assert_ne!(before.0[bin], Complex::ZERO);
        for (i, (a, b)) in before.0.iter().zip(after.0.iter()).enumerate() {
            if i != bin {
                assert_eq!(a, b, "bin {i} must be untouched");
            }
        }
        assert!(frame.is_silenced(0, 10));
        assert!(!frame.is_silenced(0, 11));
        assert_eq!(frame.silence_count(), 1);
    }

    #[test]
    fn silence_reduces_waveform_energy() {
        let tx = Transmitter::new();
        let mut frame = tx.build_frame(&[7u8; 200], DataRate::Mbps24, 0x33);
        let full: f64 = frame.to_time_samples().iter().map(|x| x.norm_sqr()).sum();
        for sc in 0..8 {
            frame.silence(1, sc * 6);
        }
        let reduced: f64 = frame.to_time_samples().iter().map(|x| x.norm_sqr()).sum();
        assert!(reduced < full);
    }

    #[test]
    fn mapped_points_match_rendered_symbols() {
        let tx = Transmitter::new();
        let frame = tx.build_frame(&[1, 2, 3, 4, 5], DataRate::Mbps36, 0x19);
        for (sym, points) in frame.data_symbols.iter().zip(&frame.mapped_points) {
            assert_eq!(&sym.data_points()[..], &points[..]);
        }
    }

    #[test]
    fn pilot_polarity_rotates_per_symbol() {
        let tx = Transmitter::new();
        let frame = tx.build_frame(&[0u8; 300], DataRate::Mbps6, 0x5D);
        let p = Prbs127::pilot_polarity();
        // SIGNAL uses p_0 = 1, data symbol n uses p_{n+1}.
        assert_eq!(frame.signal_symbol.pilot_points()[0].re, p[0] as f64);
        for (n, sym) in frame.data_symbols.iter().enumerate().take(10) {
            assert_eq!(sym.pilot_points()[0].re, p[n + 1] as f64, "symbol {n}");
        }
    }

    #[test]
    fn airtime_matches_rate_table() {
        let tx = Transmitter::new();
        let frame = tx.build_frame(&[0u8; 1020], DataRate::Mbps24, 0x5D);
        let expect_us = DataRate::Mbps24.frame_airtime_us(1024);
        assert!((frame.airtime() * 1e6 - expect_us).abs() < 1e-9);
    }

    #[test]
    fn waveform_has_no_discontinuity_guard() {
        // Every OFDM symbol's CP must equal its body tail in the rendered
        // waveform (spot check the first data symbol).
        let tx = Transmitter::new();
        let frame = tx.build_frame(b"x", DataRate::Mbps6, 0x5D);
        let samples = frame.to_time_samples();
        let start = 320 + 80; // first DATA symbol
        for i in 0..CP_LEN {
            assert_eq!(samples[start + i], samples[start + 64 + i]);
        }
    }
}
