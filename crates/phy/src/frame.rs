//! DATA-field bit processing (Clause 17.3.5): SERVICE + PSDU + tail + pad,
//! scrambling, convolutional encoding, puncturing and interleaving.
//!
//! The PSDU carried here is `payload ‖ CRC-32`, so a decoded frame can be
//! integrity-checked exactly as the paper's receiver does before computing
//! EVM feedback.

use crate::error::PhyError;
use crate::rates::DataRate;
use cos_fec::bits::{bits_to_bytes, bytes_to_bits};
use cos_fec::{ConvEncoder, Crc32, Interleaver, Scrambler, ViterbiDecoder};

/// Bits in the SERVICE field (7 scrambler-init zeros + 9 reserved zeros).
pub const SERVICE_BITS: usize = 16;
/// Tail bits appended after the PSDU.
pub const TAIL_BITS: usize = 6;

/// The fully processed DATA field of one frame, with every intermediate
/// stage retained for instrumentation (decoder-input BER, symbol-error
/// maps, EVM reconstruction).
#[derive(Debug, Clone)]
pub struct DataField {
    /// The rate everything below was built for.
    pub rate: DataRate,
    /// Unscrambled bits: SERVICE + PSDU + tail + pad.
    pub raw_bits: Vec<u8>,
    /// After scrambling (tail bits re-zeroed, Clause 17.3.5.3).
    pub scrambled: Vec<u8>,
    /// After convolutional encoding and puncturing.
    pub coded: Vec<u8>,
    /// After per-symbol interleaving — the bits actually mapped to
    /// subcarriers, in transmit order.
    pub interleaved: Vec<u8>,
    /// Number of DATA OFDM symbols.
    pub n_symbols: usize,
}

/// Builds the DATA field for a PSDU.
///
/// # Panics
///
/// Panics if the scrambler seed is invalid (zero or wider than 7 bits).
pub fn build_data_field(psdu: &[u8], rate: DataRate, scrambler_seed: u8) -> DataField {
    let n_symbols = rate.data_symbol_count(psdu.len());
    let total_bits = n_symbols * rate.ndbps();

    // SERVICE (all zeros) + PSDU + tail + pad.
    let mut raw_bits = vec![0u8; SERVICE_BITS];
    raw_bits.extend(bytes_to_bits(psdu));
    let tail_start = raw_bits.len();
    raw_bits.extend_from_slice(&[0; TAIL_BITS]);
    raw_bits.resize(total_bits, 0);

    // Scramble everything, then restore the tail bits to zero so the
    // encoder terminates.
    let mut scrambled = Scrambler::new(scrambler_seed).scramble(&raw_bits);
    for b in &mut scrambled[tail_start..tail_start + TAIL_BITS] {
        *b = 0;
    }

    let mother = ConvEncoder::new().encode(&scrambled);
    let coded = rate.code_rate().puncture(&mother);
    debug_assert_eq!(coded.len(), n_symbols * rate.ncbps());

    let interleaved = Interleaver::new(rate.ncbps(), rate.nbpsc()).interleave(&coded);

    DataField {
        rate,
        raw_bits,
        scrambled,
        coded,
        interleaved,
        n_symbols,
    }
}

/// The output of [`decode_data_field`].
#[derive(Debug, Clone)]
pub struct DecodedData {
    /// Descrambled DATA-field bits (SERVICE + PSDU + tail/pad region).
    pub bits: Vec<u8>,
    /// The scrambler seed recovered from the SERVICE prefix — needed to
    /// reconstruct the transmitted constellation points for EVM feedback.
    pub scrambler_seed: u8,
}

/// Decodes received soft bits (in transmit/interleaved order) back to the
/// descrambled DATA-field bits.
///
/// `psdu_len` (from the SIGNAL LENGTH field) locates the tail bits: the
/// 802.11a pad bits come *after* the tail and are scrambled, so the
/// trellis is only guaranteed to sit in state 0 at the tail position —
/// the decoder truncates the mother-code stream there and decodes with
/// proper termination, discarding the pad region entirely.
///
/// Fails with [`PhyError::DataFieldTooShort`] when the soft-bit stream is
/// too truncated to even hold the 7-bit SERVICE scrambler prefix, and with
/// [`PhyError::ScramblerSeed`] when the seed cannot be recovered from the
/// SERVICE prefix (possible only under catastrophic corruption). Malformed
/// input never panics.
pub fn decode_data_field(
    llrs: &[f64],
    rate: DataRate,
    psdu_len: usize,
) -> Result<DecodedData, PhyError> {
    // A truncated stream may end mid-symbol; only whole OFDM symbols can
    // be deinterleaved, so drop the ragged tail instead of asserting.
    let whole = llrs.len() - llrs.len() % rate.ncbps();
    let deinterleaved = Interleaver::new(rate.ncbps(), rate.nbpsc()).deinterleave_soft(&llrs[..whole]);
    let mother = rate.code_rate().depuncture(&deinterleaved);
    let data_bits_to_tail = SERVICE_BITS + psdu_len * 8 + TAIL_BITS;
    // The Viterbi decoder consumes coded-bit pairs; an odd trailing bit
    // from a truncated stream is dropped rather than asserted on.
    let coded_to_tail = ((data_bits_to_tail * 2).min(mother.len())) & !1;
    // Recovering the scrambler seed needs at least the 7 SERVICE prefix
    // bits, i.e. 14 mother-code bits.
    const SEED_BITS: usize = 7;
    if coded_to_tail < SEED_BITS * 2 {
        return Err(PhyError::DataFieldTooShort {
            got: coded_to_tail / 2,
            need: SEED_BITS,
        });
    }
    let scrambled = ViterbiDecoder::new().decode(&mother[..coded_to_tail], true);
    let seed = Scrambler::recover_seed(&scrambled[..SEED_BITS]).ok_or(PhyError::ScramblerSeed)?;
    Ok(DecodedData {
        bits: Scrambler::new(seed).scramble(&scrambled),
        scrambler_seed: seed,
    })
}

/// Extracts and CRC-verifies the payload from descrambled DATA-field bits.
///
/// `psdu_len` comes from the SIGNAL LENGTH field. Returns the payload
/// (PSDU minus the 4 FCS bytes) only if the CRC passes.
pub fn extract_payload(data_bits: &[u8], psdu_len: usize) -> Option<Vec<u8>> {
    let need = SERVICE_BITS + psdu_len * 8;
    if data_bits.len() < need {
        return None;
    }
    let psdu = bits_to_bytes(&data_bits[SERVICE_BITS..need]);
    Crc32::new().verify(&psdu).map(<[u8]>::to_vec)
}

/// Wraps a payload into a PSDU by appending the CRC-32 FCS.
pub fn payload_to_psdu(payload: &[u8]) -> Vec<u8> {
    Crc32::new().append(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_llrs(bits: &[u8]) -> Vec<f64> {
        bits.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect()
    }

    #[test]
    fn lengths_are_symbol_aligned() {
        for rate in DataRate::ALL {
            let psdu = payload_to_psdu(&[0xAB; 100]);
            let df = build_data_field(&psdu, rate, 0x5D);
            assert_eq!(df.raw_bits.len() % rate.ndbps(), 0, "{rate}");
            assert_eq!(df.coded.len(), df.n_symbols * rate.ncbps(), "{rate}");
            assert_eq!(df.interleaved.len(), df.coded.len(), "{rate}");
        }
    }

    #[test]
    fn service_bits_are_zero_before_scrambling() {
        let df = build_data_field(&[1, 2, 3], DataRate::Mbps12, 0x31);
        assert!(df.raw_bits[..SERVICE_BITS].iter().all(|&b| b == 0));
    }

    #[test]
    fn tail_bits_are_zero_after_scrambling() {
        let psdu = vec![0xFF; 50];
        let df = build_data_field(&psdu, DataRate::Mbps18, 0x7F);
        let tail_start = SERVICE_BITS + psdu.len() * 8;
        assert!(df.scrambled[tail_start..tail_start + TAIL_BITS].iter().all(|&b| b == 0));
    }

    #[test]
    fn decode_roundtrip_all_rates() {
        for rate in DataRate::ALL {
            let payload: Vec<u8> = (0..=200).map(|i| (i * 7) as u8).collect();
            let psdu = payload_to_psdu(&payload);
            let df = build_data_field(&psdu, rate, 0x2B);
            let decoded = decode_data_field(&ideal_llrs(&df.interleaved), rate, psdu.len())
                .expect("seed recoverable");
            assert_eq!(decoded.scrambler_seed, 0x2B, "{rate}");
            // The 6 tail bits are re-zeroed *after* scrambling, so they
            // descramble to keystream — compare only SERVICE + PSDU.
            let body = SERVICE_BITS + psdu.len() * 8;
            assert_eq!(&decoded.bits[..body], &df.raw_bits[..body], "{rate}");
            let got = extract_payload(&decoded.bits, psdu.len()).expect("CRC passes");
            assert_eq!(got, payload, "{rate}");
        }
    }

    #[test]
    fn decode_survives_erasures() {
        let payload = b"erasure bridging works".to_vec();
        let psdu = payload_to_psdu(&payload);
        let df = build_data_field(&psdu, DataRate::Mbps24, 0x11);
        let mut llrs = ideal_llrs(&df.interleaved);
        // Erase a sprinkling of transmitted bits (as silence symbols would).
        for i in (0..llrs.len()).step_by(29) {
            llrs[i] = 0.0;
        }
        let decoded = decode_data_field(&llrs, DataRate::Mbps24, psdu.len()).expect("decodes");
        assert_eq!(extract_payload(&decoded.bits, psdu.len()), Some(payload));
    }

    #[test]
    fn corrupted_frame_fails_crc() {
        let payload = b"integrity matters".to_vec();
        let psdu = payload_to_psdu(&payload);
        let df = build_data_field(&psdu, DataRate::Mbps12, 0x5D);
        let mut llrs = ideal_llrs(&df.interleaved);
        // A long burst of confident wrong bits defeats the decoder.
        for l in llrs.iter_mut().skip(200).take(120) {
            *l = -*l;
        }
        let decoded = decode_data_field(&llrs, DataRate::Mbps12, psdu.len()).expect("seed still recoverable");
        assert_eq!(extract_payload(&decoded.bits, psdu.len()), None);
    }

    #[test]
    fn extract_payload_rejects_short_input() {
        assert_eq!(extract_payload(&[0; 40], 100), None);
    }

    #[test]
    fn truncated_llrs_yield_typed_error_not_panic() {
        assert!(matches!(
            decode_data_field(&[], DataRate::Mbps6, 100),
            Err(PhyError::DataFieldTooShort { .. })
        ));
        // Shorter than one OFDM symbol: the ragged tail is dropped and
        // nothing decodable remains.
        assert!(matches!(
            decode_data_field(&[1.0; 30], DataRate::Mbps6, 100),
            Err(PhyError::DataFieldTooShort { .. })
        ));
        // Mid-symbol truncation of a real frame degrades to an error or a
        // failed decode, never a panic.
        let psdu = payload_to_psdu(b"truncated mid-flight");
        let df = build_data_field(&psdu, DataRate::Mbps12, 0x5D);
        let llrs = ideal_llrs(&df.interleaved);
        for keep in [1, 47, 96, 131, llrs.len() - 1] {
            let _ = decode_data_field(&llrs[..keep], DataRate::Mbps12, psdu.len());
        }
    }

    #[test]
    fn different_seeds_scramble_differently_but_decode_identically() {
        let payload = b"seed independence".to_vec();
        let psdu = payload_to_psdu(&payload);
        let a = build_data_field(&psdu, DataRate::Mbps12, 0x01);
        let b = build_data_field(&psdu, DataRate::Mbps12, 0x7F);
        assert_ne!(a.scrambled, b.scrambled);
        for df in [a, b] {
            let decoded = decode_data_field(&ideal_llrs(&df.interleaved), DataRate::Mbps12, psdu.len())
                .expect("decodes");
            assert_eq!(extract_payload(&decoded.bits, psdu.len()), Some(payload.clone()));
        }
    }
}
