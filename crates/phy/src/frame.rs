//! DATA-field bit processing (Clause 17.3.5): SERVICE + PSDU + tail + pad,
//! scrambling, convolutional encoding, puncturing and interleaving.
//!
//! The PSDU carried here is `payload ‖ CRC-32`, so a decoded frame can be
//! integrity-checked exactly as the paper's receiver does before computing
//! EVM feedback.

use crate::error::PhyError;
use crate::rates::DataRate;
use cos_fec::bits::{append_bits_from_bytes, bits_to_bytes_into};
use cos_fec::viterbi::LaneFrame;
use cos_fec::{ConvEncoder, Crc32, FecWorkspace, Interleaver, Scrambler, ViterbiDecoder};
use std::sync::OnceLock;

/// Bits in the SERVICE field (7 scrambler-init zeros + 9 reserved zeros).
pub const SERVICE_BITS: usize = 16;
/// Tail bits appended after the PSDU.
pub const TAIL_BITS: usize = 6;
/// SERVICE prefix bits needed to recover the scrambler seed.
const SEED_BITS: usize = 7;

/// The fully processed DATA field of one frame, with every intermediate
/// stage retained for instrumentation (decoder-input BER, symbol-error
/// maps, EVM reconstruction).
#[derive(Debug, Clone)]
pub struct DataField {
    /// The rate everything below was built for.
    pub rate: DataRate,
    /// Unscrambled bits: SERVICE + PSDU + tail + pad.
    pub raw_bits: Vec<u8>,
    /// After scrambling (tail bits re-zeroed, Clause 17.3.5.3).
    pub scrambled: Vec<u8>,
    /// After convolutional encoding and puncturing.
    pub coded: Vec<u8>,
    /// After per-symbol interleaving — the bits actually mapped to
    /// subcarriers, in transmit order.
    pub interleaved: Vec<u8>,
    /// Number of DATA OFDM symbols.
    pub n_symbols: usize,
}

impl DataField {
    /// An empty placeholder for workspace initialisation; every field is
    /// fully overwritten by [`build_data_field_into`].
    pub fn empty(rate: DataRate) -> Self {
        DataField {
            rate,
            raw_bits: Vec::new(),
            scrambled: Vec::new(),
            coded: Vec::new(),
            interleaved: Vec::new(),
            n_symbols: 0,
        }
    }
}

/// The process-wide interleaver for a rate's `(Ncbps, Nbpsc)` pair. The
/// four 802.11a configurations are built once and shared, so neither the
/// owned nor the workspace path pays the permutation-table allocation per
/// frame.
pub fn interleaver_for(rate: DataRate) -> &'static Interleaver {
    static TABLES: OnceLock<[Interleaver; 4]> = OnceLock::new();
    TABLES
        .get_or_init(|| {
            [
                Interleaver::new(48, 1),
                Interleaver::new(96, 2),
                Interleaver::new(192, 4),
                Interleaver::new(288, 6),
            ]
        })
        .iter()
        .find(|il| il.ncbps() == rate.ncbps())
        .expect("every 802.11a rate maps to a cached interleaver")
}

/// The process-wide CRC-32 engine (the 256-entry table is rebuilt nowhere
/// in the per-frame path).
fn crc32() -> &'static Crc32 {
    static CRC: OnceLock<Crc32> = OnceLock::new();
    CRC.get_or_init(Crc32::new)
}

/// Builds the DATA field for a PSDU.
///
/// # Panics
///
/// Panics if the scrambler seed is invalid (zero or wider than 7 bits).
pub fn build_data_field(psdu: &[u8], rate: DataRate, scrambler_seed: u8) -> DataField {
    let mut df = DataField::empty(rate);
    build_data_field_into(psdu, rate, scrambler_seed, &mut df, &mut FecWorkspace::new());
    df
}

/// [`build_data_field`] writing into a caller-owned [`DataField`] and
/// encode scratch, both of which are fully overwritten.
///
/// # Panics
///
/// Panics if the scrambler seed is invalid (zero or wider than 7 bits).
pub fn build_data_field_into(
    psdu: &[u8],
    rate: DataRate,
    scrambler_seed: u8,
    df: &mut DataField,
    fec: &mut FecWorkspace,
) {
    let n_symbols = rate.data_symbol_count(psdu.len());
    let total_bits = n_symbols * rate.ndbps();
    df.rate = rate;
    df.n_symbols = n_symbols;

    // SERVICE (all zeros) + PSDU + tail + pad.
    df.raw_bits.clear();
    df.raw_bits.resize(SERVICE_BITS, 0);
    append_bits_from_bytes(psdu, &mut df.raw_bits);
    let tail_start = df.raw_bits.len();
    df.raw_bits.extend_from_slice(&[0; TAIL_BITS]);
    df.raw_bits.resize(total_bits, 0);

    // Scramble everything, then restore the tail bits to zero so the
    // encoder terminates.
    df.scrambled.clear();
    df.scrambled.extend_from_slice(&df.raw_bits);
    Scrambler::new(scrambler_seed).scramble_in_place(&mut df.scrambled);
    for b in &mut df.scrambled[tail_start..tail_start + TAIL_BITS] {
        *b = 0;
    }

    ConvEncoder::new().encode_into(&df.scrambled, &mut fec.mother_bits);
    rate.code_rate().puncture_into(&fec.mother_bits, &mut df.coded);
    debug_assert_eq!(df.coded.len(), n_symbols * rate.ncbps());

    interleaver_for(rate).interleave_into(&df.coded, &mut df.interleaved);
}

/// The output of [`decode_data_field`].
#[derive(Debug, Clone)]
pub struct DecodedData {
    /// Descrambled DATA-field bits (SERVICE + PSDU + tail/pad region).
    pub bits: Vec<u8>,
    /// The scrambler seed recovered from the SERVICE prefix — needed to
    /// reconstruct the transmitted constellation points for EVM feedback.
    pub scrambler_seed: u8,
}

/// Decodes received soft bits (in transmit/interleaved order) back to the
/// descrambled DATA-field bits.
///
/// `psdu_len` (from the SIGNAL LENGTH field) locates the tail bits: the
/// 802.11a pad bits come *after* the tail and are scrambled, so the
/// trellis is only guaranteed to sit in state 0 at the tail position —
/// the decoder truncates the mother-code stream there and decodes with
/// proper termination, discarding the pad region entirely.
///
/// Fails with [`PhyError::DataFieldTooShort`] when the soft-bit stream is
/// too truncated to even hold the 7-bit SERVICE scrambler prefix, and with
/// [`PhyError::ScramblerSeed`] when the seed cannot be recovered from the
/// SERVICE prefix (possible only under catastrophic corruption). Malformed
/// input never panics.
pub fn decode_data_field(
    llrs: &[f64],
    rate: DataRate,
    psdu_len: usize,
) -> Result<DecodedData, PhyError> {
    let mut bits = Vec::new();
    let seed = decode_data_field_into(llrs, rate, psdu_len, &mut FecWorkspace::new(), &mut bits)?;
    Ok(DecodedData { bits, scrambler_seed: seed })
}

/// [`decode_data_field`] writing the descrambled bits into a caller-owned
/// buffer (fully overwritten on success) and running the FEC chain in
/// caller-owned scratch. Returns the recovered scrambler seed.
///
/// # Errors
///
/// The same typed errors as [`decode_data_field`]; on error `bits` is left
/// empty.
pub fn decode_data_field_into(
    llrs: &[f64],
    rate: DataRate,
    psdu_len: usize,
    fec: &mut FecWorkspace,
    bits: &mut Vec<u8>,
) -> Result<u8, PhyError> {
    bits.clear();
    let prep = prepare_data_field_into(llrs, rate, psdu_len, fec)?;
    run_staged_viterbi(prep, fec);
    finish_data_field_into(fec, bits)
}

/// A DATA field staged for Viterbi decoding by
/// [`prepare_data_field_into`]: the mother-code soft bits sit in
/// `fec.mother_llrs[..coded_to_tail]`, truncated at the tail position so
/// the trellis decodes with proper termination.
///
/// The token is what lets the Viterbi run be lifted out of the per-frame
/// decode: stage several frames, decode their trellises together with
/// [`cos_fec::ViterbiDecoder::decode_lockstep`] (via
/// [`staged_lane_frame`]), then finish each with
/// [`finish_data_field_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreparedDataField {
    /// Mother-code soft bits to feed the decoder (even, ≥ 14).
    pub coded_to_tail: usize,
}

impl PreparedDataField {
    /// Trellis steps (= decoded bits) of the staged frame.
    pub fn steps(&self) -> usize {
        self.coded_to_tail / 2
    }
}

/// The front half of [`decode_data_field_into`]: deinterleave,
/// depuncture and truncate at the tail, staging the Viterbi input in
/// `fec.mother_llrs` without running the decoder.
///
/// # Errors
///
/// [`PhyError::DataFieldTooShort`] when the soft-bit stream cannot even
/// hold the 7-bit SERVICE scrambler prefix.
pub fn prepare_data_field_into(
    llrs: &[f64],
    rate: DataRate,
    psdu_len: usize,
    fec: &mut FecWorkspace,
) -> Result<PreparedDataField, PhyError> {
    // A truncated stream may end mid-symbol; only whole OFDM symbols can
    // be deinterleaved, so drop the ragged tail instead of asserting.
    let whole = llrs.len() - llrs.len() % rate.ncbps();
    interleaver_for(rate).deinterleave_soft_into(&llrs[..whole], &mut fec.deinterleaved);
    rate.code_rate().depuncture_into(&fec.deinterleaved, &mut fec.mother_llrs);
    let data_bits_to_tail = SERVICE_BITS + psdu_len * 8 + TAIL_BITS;
    // The Viterbi decoder consumes coded-bit pairs; an odd trailing bit
    // from a truncated stream is dropped rather than asserted on.
    let coded_to_tail = ((data_bits_to_tail * 2).min(fec.mother_llrs.len())) & !1;
    // Recovering the scrambler seed needs at least the 7 SERVICE prefix
    // bits, i.e. 14 mother-code bits.
    if coded_to_tail < SEED_BITS * 2 {
        return Err(PhyError::DataFieldTooShort {
            got: coded_to_tail / 2,
            need: SEED_BITS,
        });
    }
    Ok(PreparedDataField { coded_to_tail })
}

/// Runs the per-frame Viterbi on a staged DATA field, leaving the
/// scrambled data bits in `fec.decoded` — the single-frame path between
/// [`prepare_data_field_into`] and [`finish_data_field_into`].
pub fn run_staged_viterbi(prep: PreparedDataField, fec: &mut FecWorkspace) {
    let steps = prep.steps();
    fec.decoded.clear();
    fec.decoded.resize(steps, 0);
    let FecWorkspace { mother_llrs, viterbi, decoded, .. } = fec;
    ViterbiDecoder::new().decode_to_slices(
        &mother_llrs[..prep.coded_to_tail],
        true,
        viterbi.prepared(steps),
        decoded,
    );
}

/// Borrows a staged DATA field as one lockstep lane frame for
/// [`cos_fec::ViterbiDecoder::decode_lockstep`], sizing the traceback
/// scratch and `fec.decoded` in the process. The decoded bits land in
/// `fec.decoded`, exactly where [`run_staged_viterbi`] leaves them.
pub fn staged_lane_frame(prep: PreparedDataField, fec: &mut FecWorkspace) -> LaneFrame<'_> {
    let steps = prep.steps();
    fec.decoded.clear();
    fec.decoded.resize(steps, 0);
    let FecWorkspace { mother_llrs, viterbi, decoded, .. } = fec;
    LaneFrame {
        llrs: &mother_llrs[..prep.coded_to_tail],
        prev_lsbs: viterbi.prepared(steps),
        out: decoded,
    }
}

/// The back half of [`decode_data_field_into`]: recovers the scrambler
/// seed from the SERVICE prefix of `fec.decoded` and descrambles into
/// `bits`.
///
/// # Errors
///
/// [`PhyError::ScramblerSeed`] when the seed cannot be recovered from the
/// SERVICE prefix (possible only under catastrophic corruption); `bits`
/// is left empty.
pub fn finish_data_field_into(fec: &FecWorkspace, bits: &mut Vec<u8>) -> Result<u8, PhyError> {
    bits.clear();
    let seed = Scrambler::recover_seed(&fec.decoded[..SEED_BITS]).ok_or(PhyError::ScramblerSeed)?;
    bits.extend_from_slice(&fec.decoded);
    Scrambler::new(seed).scramble_in_place(bits);
    Ok(seed)
}

/// Extracts and CRC-verifies the payload from descrambled DATA-field bits.
///
/// `psdu_len` comes from the SIGNAL LENGTH field. Returns the payload
/// (PSDU minus the 4 FCS bytes) only if the CRC passes.
pub fn extract_payload(data_bits: &[u8], psdu_len: usize) -> Option<Vec<u8>> {
    let mut psdu = Vec::new();
    let mut payload = Vec::new();
    extract_payload_into(data_bits, psdu_len, &mut psdu, &mut payload).then_some(payload)
}

/// [`extract_payload`] writing into caller-owned buffers: `psdu_scratch`
/// receives the re-packed PSDU bytes and `payload` the CRC-verified
/// payload. Returns `true` on CRC pass; `payload` is left empty otherwise.
pub fn extract_payload_into(
    data_bits: &[u8],
    psdu_len: usize,
    psdu_scratch: &mut Vec<u8>,
    payload: &mut Vec<u8>,
) -> bool {
    payload.clear();
    let need = SERVICE_BITS + psdu_len * 8;
    if data_bits.len() < need {
        return false;
    }
    // Reserve the payload bound even on frames that will fail the CRC:
    // capacity then saturates on the first frame of a given PSDU length
    // instead of on the first CRC pass, which on a poor link can land
    // arbitrarily late.
    payload.reserve(psdu_len.saturating_sub(4));
    bits_to_bytes_into(&data_bits[SERVICE_BITS..need], psdu_scratch);
    match crc32().verify(psdu_scratch) {
        Some(body) => {
            payload.extend_from_slice(body);
            true
        }
        None => false,
    }
}

/// Wraps a payload into a PSDU by appending the CRC-32 FCS.
pub fn payload_to_psdu(payload: &[u8]) -> Vec<u8> {
    let mut psdu = Vec::new();
    payload_to_psdu_into(payload, &mut psdu);
    psdu
}

/// [`payload_to_psdu`] writing into a caller-owned buffer, which is fully
/// overwritten.
pub fn payload_to_psdu_into(payload: &[u8], psdu: &mut Vec<u8>) {
    crc32().append_into(payload, psdu);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_llrs(bits: &[u8]) -> Vec<f64> {
        bits.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect()
    }

    #[test]
    fn lengths_are_symbol_aligned() {
        for rate in DataRate::ALL {
            let psdu = payload_to_psdu(&[0xAB; 100]);
            let df = build_data_field(&psdu, rate, 0x5D);
            assert_eq!(df.raw_bits.len() % rate.ndbps(), 0, "{rate}");
            assert_eq!(df.coded.len(), df.n_symbols * rate.ncbps(), "{rate}");
            assert_eq!(df.interleaved.len(), df.coded.len(), "{rate}");
        }
    }

    #[test]
    fn service_bits_are_zero_before_scrambling() {
        let df = build_data_field(&[1, 2, 3], DataRate::Mbps12, 0x31);
        assert!(df.raw_bits[..SERVICE_BITS].iter().all(|&b| b == 0));
    }

    #[test]
    fn tail_bits_are_zero_after_scrambling() {
        let psdu = vec![0xFF; 50];
        let df = build_data_field(&psdu, DataRate::Mbps18, 0x7F);
        let tail_start = SERVICE_BITS + psdu.len() * 8;
        assert!(df.scrambled[tail_start..tail_start + TAIL_BITS].iter().all(|&b| b == 0));
    }

    #[test]
    fn decode_roundtrip_all_rates() {
        for rate in DataRate::ALL {
            let payload: Vec<u8> = (0..=200).map(|i| (i * 7) as u8).collect();
            let psdu = payload_to_psdu(&payload);
            let df = build_data_field(&psdu, rate, 0x2B);
            let decoded = decode_data_field(&ideal_llrs(&df.interleaved), rate, psdu.len())
                .expect("seed recoverable");
            assert_eq!(decoded.scrambler_seed, 0x2B, "{rate}");
            // The 6 tail bits are re-zeroed *after* scrambling, so they
            // descramble to keystream — compare only SERVICE + PSDU.
            let body = SERVICE_BITS + psdu.len() * 8;
            assert_eq!(&decoded.bits[..body], &df.raw_bits[..body], "{rate}");
            let got = extract_payload(&decoded.bits, psdu.len()).expect("CRC passes");
            assert_eq!(got, payload, "{rate}");
        }
    }

    #[test]
    fn decode_survives_erasures() {
        let payload = b"erasure bridging works".to_vec();
        let psdu = payload_to_psdu(&payload);
        let df = build_data_field(&psdu, DataRate::Mbps24, 0x11);
        let mut llrs = ideal_llrs(&df.interleaved);
        // Erase a sprinkling of transmitted bits (as silence symbols would).
        for i in (0..llrs.len()).step_by(29) {
            llrs[i] = 0.0;
        }
        let decoded = decode_data_field(&llrs, DataRate::Mbps24, psdu.len()).expect("decodes");
        assert_eq!(extract_payload(&decoded.bits, psdu.len()), Some(payload));
    }

    #[test]
    fn corrupted_frame_fails_crc() {
        let payload = b"integrity matters".to_vec();
        let psdu = payload_to_psdu(&payload);
        let df = build_data_field(&psdu, DataRate::Mbps12, 0x5D);
        let mut llrs = ideal_llrs(&df.interleaved);
        // A long burst of confident wrong bits defeats the decoder.
        for l in llrs.iter_mut().skip(200).take(120) {
            *l = -*l;
        }
        let decoded = decode_data_field(&llrs, DataRate::Mbps12, psdu.len()).expect("seed still recoverable");
        assert_eq!(extract_payload(&decoded.bits, psdu.len()), None);
    }

    #[test]
    fn extract_payload_rejects_short_input() {
        assert_eq!(extract_payload(&[0; 40], 100), None);
    }

    #[test]
    fn truncated_llrs_yield_typed_error_not_panic() {
        assert!(matches!(
            decode_data_field(&[], DataRate::Mbps6, 100),
            Err(PhyError::DataFieldTooShort { .. })
        ));
        // Shorter than one OFDM symbol: the ragged tail is dropped and
        // nothing decodable remains.
        assert!(matches!(
            decode_data_field(&[1.0; 30], DataRate::Mbps6, 100),
            Err(PhyError::DataFieldTooShort { .. })
        ));
        // Mid-symbol truncation of a real frame degrades to an error or a
        // failed decode, never a panic.
        let psdu = payload_to_psdu(b"truncated mid-flight");
        let df = build_data_field(&psdu, DataRate::Mbps12, 0x5D);
        let llrs = ideal_llrs(&df.interleaved);
        for keep in [1, 47, 96, 131, llrs.len() - 1] {
            let _ = decode_data_field(&llrs[..keep], DataRate::Mbps12, psdu.len());
        }
    }

    #[test]
    fn different_seeds_scramble_differently_but_decode_identically() {
        let payload = b"seed independence".to_vec();
        let psdu = payload_to_psdu(&payload);
        let a = build_data_field(&psdu, DataRate::Mbps12, 0x01);
        let b = build_data_field(&psdu, DataRate::Mbps12, 0x7F);
        assert_ne!(a.scrambled, b.scrambled);
        for df in [a, b] {
            let decoded = decode_data_field(&ideal_llrs(&df.interleaved), DataRate::Mbps12, psdu.len())
                .expect("decodes");
            assert_eq!(extract_payload(&decoded.bits, psdu.len()), Some(payload.clone()));
        }
    }
}
