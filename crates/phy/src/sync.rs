//! Packet detection, timing synchronisation and carrier-frequency-offset
//! (CFO) estimation — the receiver front end that the Sora driver provides
//! in hardware-adjacent software.
//!
//! With this module the simulator no longer needs the "ideal timing"
//! substitution: a receiver can be handed a long sample stream containing
//! a frame at an unknown offset with an unknown CFO and recover both.
//!
//! * **Packet detection** — the short training field repeats every 16
//!   samples, so the normalised delay-16 autocorrelation
//!   `|Σ r[n]·r*[n+16]| / Σ|r[n]|²` forms a plateau near 1 over the STF.
//! * **Coarse CFO** — the phase of that same autocorrelation:
//!   `f̂ = arg(C)/(2π·16·T_s)`; unambiguous up to ±625 kHz.
//! * **Fine timing** — cross-correlation against the known 64-sample LTF
//!   body pins the symbol boundary to the sample.
//! * **Fine CFO** — the phase between the two identical LTF bodies
//!   (delay 64) refines the estimate to ±156 kHz ambiguity, which the
//!   coarse stage has already resolved.

use crate::preamble::{self, PREAMBLE_LEN, STF_LEN};
use crate::subcarriers::FFT_SIZE;
use cos_dsp::fft::plan;
use cos_dsp::Complex;

/// The 20 MHz sample period in seconds.
pub const SAMPLE_PERIOD: f64 = 1.0 / 20e6;

/// Result of a successful acquisition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Acquisition {
    /// Index of the first preamble sample in the stream.
    pub frame_start: usize,
    /// Estimated carrier frequency offset in Hz.
    pub cfo_hz: f64,
    /// The peak normalised STF autocorrelation (detection confidence).
    pub confidence: f64,
}

/// Synchroniser configuration.
#[derive(Debug, Clone, Copy)]
pub struct Synchronizer {
    /// Autocorrelation threshold for declaring a packet (0..1).
    pub detect_threshold: f64,
}

impl Default for Synchronizer {
    fn default() -> Self {
        Synchronizer { detect_threshold: 0.8 }
    }
}

impl Synchronizer {
    /// Creates a synchroniser with the given detection threshold.
    pub fn new(detect_threshold: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&detect_threshold),
            "threshold must be in [0, 1), got {detect_threshold}"
        );
        Synchronizer { detect_threshold }
    }

    /// Scans a stream for a frame; returns the acquisition or `None` if no
    /// preamble is found.
    ///
    /// The returned `frame_start` is exact to the sample for SNRs where
    /// the LTF cross-correlation peak dominates (≳ 0 dB).
    pub fn acquire(&self, samples: &[Complex]) -> Option<Acquisition> {
        if samples.len() < PREAMBLE_LEN + FFT_SIZE {
            return None;
        }

        // --- Stage 1: STF plateau detection (delay-16 autocorrelation).
        let coarse = self.detect_plateau(samples)?;

        // --- Stage 2: coarse CFO from the same correlation.
        let c16 = autocorrelation(samples, coarse, STF_LEN.min(samples.len() - coarse - 16), 16);
        let coarse_cfo = c16.arg() / (2.0 * std::f64::consts::PI * 16.0 * SAMPLE_PERIOD);

        // --- Stage 3: fine timing via LTF cross-correlation.
        // Search a window around the coarse estimate for the first LTF
        // body (which starts at frame_start + 192).
        let reference = ltf_reference();
        let lo = coarse.saturating_sub(24);
        let hi = (coarse + 24).min(samples.len().saturating_sub(PREAMBLE_LEN));
        let mut best = (0.0f64, coarse);
        for cand in lo..=hi {
            let ltf1 = cand + STF_LEN + 32;
            if ltf1 + FFT_SIZE > samples.len() {
                break;
            }
            // Correlate with CFO pre-compensation so a large offset does
            // not destroy the peak.
            let mut acc = Complex::ZERO;
            for (i, &r) in reference.iter().enumerate() {
                let rot = Complex::from_angle(
                    -2.0 * std::f64::consts::PI * coarse_cfo * (ltf1 + i) as f64 * SAMPLE_PERIOD,
                );
                acc += samples[ltf1 + i] * rot * r.conj();
            }
            let metric = acc.norm();
            if metric > best.0 {
                best = (metric, cand);
            }
        }
        let frame_start = best.1;

        // --- Stage 4: fine CFO from the two LTF bodies (delay 64).
        let ltf1 = frame_start + STF_LEN + 32;
        let fine_window = FFT_SIZE.min(samples.len().saturating_sub(ltf1 + FFT_SIZE));
        let c64 = autocorrelation(samples, ltf1, fine_window, FFT_SIZE);
        let fine_cfo = c64.arg() / (2.0 * std::f64::consts::PI * FFT_SIZE as f64 * SAMPLE_PERIOD);
        // Resolve the ±156 kHz ambiguity of the fine estimate with the
        // coarse one.
        let ambiguity = 1.0 / (FFT_SIZE as f64 * SAMPLE_PERIOD);
        let k = ((coarse_cfo - fine_cfo) / ambiguity).round();
        let cfo_hz = fine_cfo + k * ambiguity;

        // Confidence: plateau correlation at the detected start.
        let conf = normalized_autocorrelation(samples, frame_start, STF_LEN - 16, 16);

        Some(Acquisition { frame_start, cfo_hz, confidence: conf })
    }

    /// Finds the start of the STF plateau; returns the sample index where
    /// the normalised correlation first exceeds the threshold and stays
    /// there.
    fn detect_plateau(&self, samples: &[Complex]) -> Option<usize> {
        let window = 64; // quarter of the STF
        let limit = samples.len().checked_sub(window + 16)?;
        let mut run = 0usize;
        const NEED: usize = 48;
        for n in 0..limit {
            let c = normalized_autocorrelation(samples, n, window, 16);
            if c > self.detect_threshold {
                run += 1;
                if run >= NEED {
                    // The plateau began `run` samples ago.
                    return Some(n + 1 - run);
                }
            } else {
                run = 0;
            }
        }
        None
    }
}

/// Removes a carrier frequency offset from a sample stream (in place),
/// rotating sample `n` by `e^{-j2π·f·n·T_s}`.
pub fn correct_cfo(samples: &mut [Complex], cfo_hz: f64) {
    let step = -2.0 * std::f64::consts::PI * cfo_hz * SAMPLE_PERIOD;
    let rot_step = Complex::from_angle(step);
    let mut rot = Complex::ONE;
    for s in samples.iter_mut() {
        *s *= rot;
        rot *= rot_step;
        // Renormalise occasionally to stop drift.
        if rot.norm_sqr() > 1.0000001 || rot.norm_sqr() < 0.9999999 {
            rot = rot.scale(1.0 / rot.norm());
        }
    }
}

/// Applies a carrier frequency offset (the channel impairment).
pub fn apply_cfo(samples: &mut [Complex], cfo_hz: f64) {
    correct_cfo(samples, -cfo_hz);
}

/// The delayed autocorrelation `Σ_{i<len} r[n+i]·r*[n+i+delay]`, conjugated
/// so a positive CFO yields a positive phase ramp.
fn autocorrelation(samples: &[Complex], start: usize, len: usize, delay: usize) -> Complex {
    let mut acc = Complex::ZERO;
    for i in 0..len {
        if start + i + delay >= samples.len() {
            break;
        }
        acc += samples[start + i].conj() * samples[start + i + delay];
    }
    acc
}

/// The normalised autocorrelation magnitude in `[0, 1]`, normalised by
/// the *larger* of the two window energies so a window that only
/// partially overlaps the signal cannot spike the ratio.
fn normalized_autocorrelation(samples: &[Complex], start: usize, len: usize, delay: usize) -> f64 {
    let c = autocorrelation(samples, start, len, delay);
    let mut e1 = 0.0;
    let mut e2 = 0.0;
    for i in 0..len {
        if start + i + delay >= samples.len() {
            break;
        }
        e1 += samples[start + i].norm_sqr();
        e2 += samples[start + i + delay].norm_sqr();
    }
    let denom = e1.max(e2);
    if denom <= 0.0 {
        0.0
    } else {
        c.norm() / denom
    }
}

/// The time-domain LTF body (64 samples), cached per call site.
fn ltf_reference() -> [Complex; FFT_SIZE] {
    let mut body = preamble::ltf_freq_symbol().0;
    plan(FFT_SIZE).inverse(&mut body);
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::DataRate;
    use crate::tx::Transmitter;
    use cos_dsp::GaussianSource;

    fn frame_samples() -> Vec<Complex> {
        Transmitter::new()
            .build_frame(&[0xA5; 300], DataRate::Mbps12, 0x5D)
            .to_time_samples()
    }

    fn with_offset_and_noise(offset: usize, snr_db: f64, seed: u64) -> Vec<Complex> {
        let frame = frame_samples();
        let sig_power = 52.0 / (64.0 * 64.0);
        let noise_var = sig_power / cos_dsp::db_to_linear(snr_db);
        let mut g = GaussianSource::new(seed);
        // Idle noise, then the frame, then idle noise again; AWGN over
        // the whole stream.
        let mut stream = vec![Complex::ZERO; offset];
        stream.extend_from_slice(&frame);
        stream.extend(std::iter::repeat_n(Complex::ZERO, 200));
        for s in &mut stream {
            *s += g.complex_normal(noise_var);
        }
        stream
    }

    #[test]
    fn clean_frame_is_found_exactly() {
        let mut stream = vec![Complex::ZERO; 500];
        stream.extend(frame_samples());
        let acq = Synchronizer::default().acquire(&stream).expect("found");
        assert_eq!(acq.frame_start, 500);
        assert!(acq.cfo_hz.abs() < 1.0, "phantom CFO {}", acq.cfo_hz);
        assert!(acq.confidence > 0.9);
    }

    #[test]
    fn noisy_frame_timing_is_sample_accurate() {
        for (offset, snr) in [(123usize, 15.0), (777, 10.0), (64, 20.0)] {
            let stream = with_offset_and_noise(offset, snr, 9);
            let acq = Synchronizer::default().acquire(&stream).expect("found");
            let err = acq.frame_start.abs_diff(offset);
            assert!(err <= 1, "offset {offset} @ {snr} dB: found {}", acq.frame_start);
        }
    }

    #[test]
    fn cfo_is_estimated_accurately() {
        for cfo in [-80e3f64, -12e3, 5e3, 47e3, 120e3] {
            let mut stream = vec![Complex::ZERO; 300];
            stream.extend(frame_samples());
            apply_cfo(&mut stream, cfo);
            let acq = Synchronizer::default().acquire(&stream).expect("found");
            let err = (acq.cfo_hz - cfo).abs();
            assert!(err < 500.0, "cfo {cfo}: estimated {} (err {err})", acq.cfo_hz);
        }
    }

    #[test]
    fn cfo_correction_inverts_application() {
        let mut samples = frame_samples();
        let original = samples.clone();
        apply_cfo(&mut samples, 33e3);
        correct_cfo(&mut samples, 33e3);
        let err: f64 = samples
            .iter()
            .zip(&original)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "residual {err}");
    }

    #[test]
    fn pure_noise_is_not_detected() {
        let mut g = GaussianSource::new(3);
        let noise: Vec<Complex> = (0..4000).map(|_| g.complex_normal(1.0)).collect();
        assert_eq!(Synchronizer::default().acquire(&noise), None);
    }

    #[test]
    fn constant_tone_is_not_mistaken_for_a_frame() {
        // A CW tone has perfect delay-16 correlation but no LTF; the
        // plateau detector will fire, but timing lock then lands
        // somewhere — confidence checks and downstream SIGNAL decoding
        // reject it. Here we only require no panic and, if "detected",
        // a finite CFO.
        let tone: Vec<Complex> = (0..3000)
            .map(|n| Complex::from_angle(2.0 * std::f64::consts::PI * 0.01 * n as f64))
            .collect();
        if let Some(acq) = Synchronizer::default().acquire(&tone) {
            assert!(acq.cfo_hz.is_finite());
        }
    }

    #[test]
    fn short_stream_returns_none() {
        assert_eq!(Synchronizer::default().acquire(&[Complex::ONE; 50]), None);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn invalid_threshold_panics() {
        Synchronizer::new(1.5);
    }
}
