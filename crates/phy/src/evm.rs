//! Error vector magnitude (EVM) instrumentation — the paper's Eq. (1) and
//! Eq. (2).
//!
//! Per-subcarrier EVM characterises frequency-selective fading at symbol
//! granularity; the CoS receiver computes it after a frame passes its CRC
//! (so the transmitted constellation points can be reconstructed) and uses
//! it to select weak subcarriers. The normalised EVM change `∇EVM`
//! quantifies temporal selectivity (Fig. 7).

use crate::constellation::Modulation;
use crate::pipeline::TxWorkspace;
use crate::rates::DataRate;
use crate::subcarriers::NUM_DATA;
use crate::tx::Transmitter;
use cos_dsp::Complex;

/// Per-subcarrier EVM (paper Eq. 1): for each of the 48 data subcarriers,
/// `sqrt( mean_i |r_i − s_i|² / mean_m |s_m|² )`, where `r` are equalised
/// received points, `s` the transmitted points, and the denominator is the
/// constellation's average energy (1 for the normalised 802.11a
/// constellations, but computed exactly).
///
/// Positions where `exclude[symbol][sc]` is `true` (silence symbols) are
/// skipped, as the paper requires.
///
/// # Panics
///
/// Panics if `received` and `reference` have different shapes, or a mask
/// is provided with the wrong number of rows.
pub fn per_subcarrier_evm(
    received: &[[Complex; NUM_DATA]],
    reference: &[[Complex; NUM_DATA]],
    modulation: Modulation,
    exclude: Option<&[[bool; NUM_DATA]]>,
) -> [f64; NUM_DATA] {
    assert_eq!(received.len(), reference.len(), "received/reference symbol counts differ");
    if let Some(mask) = exclude {
        assert_eq!(mask.len(), received.len(), "exclude mask rows must match symbol count");
    }
    let denom = modulation.average_energy();
    let mut err = [0.0f64; NUM_DATA];
    let mut count = [0usize; NUM_DATA];
    for (n, (rx_row, tx_row)) in received.iter().zip(reference).enumerate() {
        for sc in 0..NUM_DATA {
            if exclude.is_some_and(|m| m[n][sc]) {
                continue;
            }
            err[sc] += (rx_row[sc] - tx_row[sc]).norm_sqr();
            count[sc] += 1;
        }
    }
    let mut evm = [0.0f64; NUM_DATA];
    for sc in 0..NUM_DATA {
        if count[sc] > 0 {
            evm[sc] = (err[sc] / count[sc] as f64 / denom).sqrt();
        }
    }
    evm
}

/// The normalised EVM change `∇EVM(τ)` (paper Eq. 2): with `D(t)` the
/// 48-vector of per-subcarrier error-vector magnitudes,
/// `∇EVM = ‖D(t) − D(t+τ)‖₂ / ‖D(t+τ)‖₂`.
///
/// # Panics
///
/// Panics if `later` has zero norm (no error vectors at all).
pub fn evm_change(now: &[f64; NUM_DATA], later: &[f64; NUM_DATA]) -> f64 {
    let diff: f64 = now
        .iter()
        .zip(later)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let norm: f64 = later.iter().map(|b| b * b).sum::<f64>().sqrt();
    assert!(norm > 0.0, "∇EVM undefined for a zero reference EVM vector");
    diff / norm
}

/// Reconstructs the transmitted constellation points of a decoded frame by
/// re-running the transmit mapping on the recovered PSDU — the paper's
/// §III-D procedure, valid once the CRC has passed.
///
/// `payload` is the CRC-verified payload, `seed` the recovered scrambler
/// seed.
pub fn reconstruct_points(
    payload: &[u8],
    rate: DataRate,
    seed: u8,
) -> Vec<[Complex; NUM_DATA]> {
    Transmitter::new().build_frame(payload, rate, seed).mapped_points
}

/// [`reconstruct_points`] building the reference frame inside a
/// caller-owned [`TxWorkspace`] and returning a borrow of its mapped
/// points — the per-frame reconstruction of the feedback loop without the
/// per-frame allocation.
pub fn reconstruct_points_into<'a>(
    payload: &[u8],
    rate: DataRate,
    seed: u8,
    ws: &'a mut TxWorkspace,
) -> &'a [[Complex; NUM_DATA]] {
    Transmitter::new().build_frame_into(payload, rate, seed, ws);
    &ws.frame.mapped_points
}

/// Counts symbol errors: positions where the hard decision on the
/// equalised point differs from the transmitted point. Returns a flat map
/// in slot-major order (`symbol * 48 + sc`), the x-axis of Fig. 6(a).
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn symbol_error_map(
    received: &[[Complex; NUM_DATA]],
    reference: &[[Complex; NUM_DATA]],
    modulation: Modulation,
) -> Vec<bool> {
    assert_eq!(received.len(), reference.len(), "shape mismatch");
    let mut map = Vec::with_capacity(received.len() * NUM_DATA);
    for (rx_row, tx_row) in received.iter().zip(reference) {
        for sc in 0..NUM_DATA {
            let nearest = modulation.nearest_point(rx_row[sc]);
            map.push((nearest - tx_row[sc]).norm() > 1e-9);
        }
    }
    map
}

/// Per-subcarrier symbol error rate from a flat error map — Fig. 6(b).
pub fn per_subcarrier_ser(error_map: &[bool]) -> [f64; NUM_DATA] {
    assert!(error_map.len().is_multiple_of(NUM_DATA), "error map must be whole symbols");
    let n_sym = error_map.len() / NUM_DATA;
    let mut ser = [0.0f64; NUM_DATA];
    for (i, &e) in error_map.iter().enumerate() {
        if e {
            ser[i % NUM_DATA] += 1.0;
        }
    }
    for s in &mut ser {
        *s /= n_sym.max(1) as f64;
    }
    ser
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(value: Complex) -> Vec<[Complex; NUM_DATA]> {
        vec![[value; NUM_DATA]; 4]
    }

    #[test]
    fn zero_error_gives_zero_evm() {
        let pts = grid(Complex::new(1.0, 0.0));
        let evm = per_subcarrier_evm(&pts, &pts, Modulation::Bpsk, None);
        assert!(evm.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn known_offset_gives_known_evm() {
        let tx = grid(Complex::new(1.0, 0.0));
        let rx = grid(Complex::new(1.1, 0.0));
        let evm = per_subcarrier_evm(&rx, &tx, Modulation::Bpsk, None);
        for &e in &evm {
            assert!((e - 0.1).abs() < 1e-12, "evm {e}");
        }
    }

    #[test]
    fn excluded_positions_do_not_count() {
        let tx = grid(Complex::new(1.0, 0.0));
        let mut rx = grid(Complex::new(1.0, 0.0));
        // Corrupt symbol 0 on subcarrier 3, then exclude it.
        rx[0][3] = Complex::new(5.0, 5.0);
        let mut mask = vec![[false; NUM_DATA]; 4];
        mask[0][3] = true;
        let evm = per_subcarrier_evm(&rx, &tx, Modulation::Bpsk, Some(&mask));
        assert_eq!(evm[3], 0.0);
        let evm_unmasked = per_subcarrier_evm(&rx, &tx, Modulation::Bpsk, None);
        assert!(evm_unmasked[3] > 1.0);
    }

    #[test]
    fn evm_change_is_zero_for_identical_vectors() {
        let d = [0.1f64; NUM_DATA];
        assert_eq!(evm_change(&d, &d), 0.0);
    }

    #[test]
    fn evm_change_is_scale_free() {
        let mut a = [0.0f64; NUM_DATA];
        let mut b = [0.0f64; NUM_DATA];
        for i in 0..NUM_DATA {
            a[i] = 0.05 + 0.01 * (i as f64 * 0.3).sin();
            b[i] = a[i] * 1.02;
        }
        let g1 = evm_change(&a, &b);
        let a2: [f64; NUM_DATA] = a.map(|x| x * 10.0);
        let b2: [f64; NUM_DATA] = b.map(|x| x * 10.0);
        let g2 = evm_change(&a2, &b2);
        assert!((g1 - g2).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_transmitter() {
        let payload = b"reconstruct me".to_vec();
        let rate = DataRate::Mbps24;
        let frame = Transmitter::new().build_frame(&payload, rate, 0x47);
        let rebuilt = reconstruct_points(&payload, rate, 0x47);
        assert_eq!(rebuilt.len(), frame.mapped_points.len());
        for (a, b) in rebuilt.iter().zip(&frame.mapped_points) {
            assert_eq!(&a[..], &b[..]);
        }
    }

    #[test]
    fn symbol_error_map_flags_only_real_errors() {
        let m = Modulation::Qpsk;
        let tx = vec![[m.map(&[0, 0]); NUM_DATA]; 2];
        let mut rx = tx.clone();
        // Small perturbation: no error. Large: error.
        rx[0][0] = tx[0][0] + Complex::new(0.1, 0.1);
        rx[1][7] = -tx[1][7];
        let map = symbol_error_map(&rx, &tx, m);
        assert!(!map[0]);
        assert!(map[NUM_DATA + 7]);
        assert_eq!(map.iter().filter(|&&e| e).count(), 1);
    }

    #[test]
    fn ser_aggregates_by_subcarrier() {
        let mut map = vec![false; NUM_DATA * 10];
        // Subcarrier 5 fails in 4 of 10 symbols.
        for n in 0..4 {
            map[n * NUM_DATA + 5] = true;
        }
        let ser = per_subcarrier_ser(&map);
        assert!((ser[5] - 0.4).abs() < 1e-12);
        assert_eq!(ser[6], 0.0);
    }

    #[test]
    #[should_panic(expected = "zero reference")]
    fn evm_change_rejects_zero_reference() {
        evm_change(&[0.1; NUM_DATA], &[0.0; NUM_DATA]);
    }
}
