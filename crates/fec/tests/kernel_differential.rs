//! Kernel differential property tests: the scalar, lane and lockstep
//! Viterbi ACS kernels must be **byte-equal** over arbitrary LLR streams
//! (erasures included), frame lengths, termination flags and batch sizes,
//! covering the remainder and odd-batch paths of the lockstep driver.
//! The per-frame kernels are compared on decoded bits *and* survivor
//! bitsets; lockstep batches on decoded bits (the lockstep kernel keeps
//! its survivors lane-major in the `SymbolBatch`, not in `prev_lsbs`).

use cos_dsp::KernelMode;
use cos_fec::{LaneFrame, SymbolBatch, ViterbiDecoder};
use proptest::prelude::*;

/// Soft bits in a plausible LLR range; values near zero act as erasures,
/// so the streams exercise ties and the erasure-decoding path too.
fn arb_llrs(pairs: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-4.0f64..4.0, pairs * 2).prop_map(|mut v| {
        for x in v.iter_mut() {
            if x.abs() < 0.4 {
                *x = 0.0; // exact erasure
            }
        }
        v
    })
}

/// Decodes with an explicit kernel, returning `(bits, survivor bitsets)`.
fn decode_with(llrs: &[f64], terminated: bool, mode: KernelMode) -> (Vec<u8>, Vec<u64>) {
    let steps = llrs.len() / 2;
    let mut prev = vec![0u64; steps];
    let mut out = vec![0u8; steps];
    ViterbiDecoder::new().decode_to_slices_with(llrs, terminated, mode, &mut prev, &mut out);
    (out, prev)
}

proptest! {
    #[test]
    fn lane_kernel_is_byte_equal_to_scalar(
        steps in 1usize..180,
        llrs in arb_llrs(180),
        t in 0usize..2,
    ) {
        let llrs = &llrs[..steps * 2];
        let terminated = t == 1;
        let (scalar_bits, scalar_prev) = decode_with(llrs, terminated, KernelMode::Scalar);
        let (lane_bits, lane_prev) = decode_with(llrs, terminated, KernelMode::Lanes);
        prop_assert_eq!(scalar_bits, lane_bits);
        prop_assert_eq!(scalar_prev, lane_prev);
    }

    #[test]
    fn lockstep_batches_are_byte_equal_to_scalar(
        lens in proptest::collection::vec(1usize..60, 1..9),
        pool in arb_llrs(120),
        t in 0usize..2,
    ) {
        let terminated = t == 1;
        // Frame k reads its soft bits from the shared pool at offset k, so
        // equal-length frames still carry different streams.
        let frames_llrs: Vec<Vec<f64>> = lens
            .iter()
            .enumerate()
            .map(|(k, &steps)| {
                (0..steps * 2).map(|i| pool[(i + 7 * k) % pool.len()]).collect()
            })
            .collect();

        let reference: Vec<(Vec<u8>, Vec<u64>)> = frames_llrs
            .iter()
            .map(|llrs| decode_with(llrs, terminated, KernelMode::Scalar))
            .collect();

        let mut prevs: Vec<Vec<u64>> = lens.iter().map(|&s| vec![0u64; s]).collect();
        let mut outs: Vec<Vec<u8>> = lens.iter().map(|&s| vec![0u8; s]).collect();
        let mut lane_frames: Vec<LaneFrame<'_>> = frames_llrs
            .iter()
            .zip(prevs.iter_mut().zip(outs.iter_mut()))
            .map(|(llrs, (prev, out))| LaneFrame { llrs, prev_lsbs: prev, out })
            .collect();
        let mut batch = SymbolBatch::new();
        ViterbiDecoder::new().decode_lockstep_with(
            &mut lane_frames,
            terminated,
            KernelMode::Lanes,
            &mut batch,
        );
        drop(lane_frames);

        for (k, ((bits, _prev), got_bits)) in reference.iter().zip(outs.iter()).enumerate() {
            prop_assert_eq!(bits, got_bits, "frame {}", k);
        }
    }

    #[test]
    fn lockstep_scalar_mode_is_byte_equal_too(
        lens in proptest::collection::vec(1usize..40, 1..6),
        pool in arb_llrs(80),
    ) {
        // The scalar lockstep path (per-frame scalar kernel) must decode
        // the same bits as the lane lockstep path as well.
        let frames_llrs: Vec<Vec<f64>> = lens
            .iter()
            .enumerate()
            .map(|(k, &steps)| {
                (0..steps * 2).map(|i| pool[(i + 11 * k) % pool.len()]).collect()
            })
            .collect();
        let run = |mode: KernelMode| -> Vec<Vec<u8>> {
            let mut prevs: Vec<Vec<u64>> = lens.iter().map(|&s| vec![0u64; s]).collect();
            let mut outs: Vec<Vec<u8>> = lens.iter().map(|&s| vec![0u8; s]).collect();
            let mut lane_frames: Vec<LaneFrame<'_>> = frames_llrs
                .iter()
                .zip(prevs.iter_mut().zip(outs.iter_mut()))
                .map(|(llrs, (prev, out))| LaneFrame { llrs, prev_lsbs: prev, out })
                .collect();
            let mut batch = SymbolBatch::new();
            ViterbiDecoder::new().decode_lockstep_with(&mut lane_frames, true, mode, &mut batch);
            drop(lane_frames);
            outs
        };
        prop_assert_eq!(run(KernelMode::Scalar), run(KernelMode::Lanes));
    }
}
