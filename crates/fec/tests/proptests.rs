//! Property-based tests for the FEC stack.

use cos_fec::bits::{bits_to_bytes, bytes_to_bits};
use cos_fec::{CodeRate, ConvEncoder, Crc32, Interleaver, Scrambler, ViterbiDecoder};
use proptest::prelude::*;

fn arb_bits(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=1, 1..max_len)
}

fn ideal_llrs(coded: &[u8]) -> Vec<f64> {
    coded.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect()
}

proptest! {
    #[test]
    fn bytes_bits_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
    }

    #[test]
    fn scrambler_is_involution(data in arb_bits(512), seed in 1u8..0x80) {
        let once = Scrambler::new(seed).scramble(&data);
        let twice = Scrambler::new(seed).scramble(&once);
        prop_assert_eq!(twice, data);
    }

    #[test]
    fn viterbi_inverts_encoder(mut data in arb_bits(300)) {
        data.extend_from_slice(&[0; 6]);
        let coded = ConvEncoder::new().encode(&data);
        let decoded = ViterbiDecoder::new().decode(&ideal_llrs(&coded), true);
        prop_assert_eq!(decoded, data);
    }

    #[test]
    fn viterbi_corrects_isolated_flips(mut data in arb_bits(200), gap in 30usize..60) {
        data.extend_from_slice(&[0; 6]);
        let coded = ConvEncoder::new().encode(&data);
        let mut llrs = ideal_llrs(&coded);
        for i in (0..llrs.len()).step_by(gap) {
            llrs[i] = -llrs[i];
        }
        prop_assert_eq!(ViterbiDecoder::new().decode(&llrs, true), data);
    }

    #[test]
    fn punctured_roundtrip_all_rates(
        mut data in arb_bits(150),
        rate_idx in 0usize..3,
    ) {
        let rate = [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters][rate_idx];
        data.extend_from_slice(&[0; 6]);
        // Pad so the mother-code output aligns with the puncture period.
        let period = rate.keep_mask().len();
        while !(data.len() * 2).is_multiple_of(period) {
            data.push(0);
        }
        let coded = ConvEncoder::new().encode(&data);
        let tx = rate.puncture(&coded);
        let soft = rate.depuncture(&ideal_llrs(&tx));
        prop_assert_eq!(ViterbiDecoder::new().decode(&soft, true), data);
    }

    #[test]
    fn interleaver_roundtrip(
        config_idx in 0usize..4,
        block_count in 1usize..4,
        seed in any::<u64>(),
    ) {
        let (ncbps, nbpsc) = [(48, 1), (96, 2), (192, 4), (288, 6)][config_idx];
        let il = Interleaver::new(ncbps, nbpsc);
        let mut x = seed;
        let bits: Vec<u8> = (0..ncbps * block_count).map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((x >> 63) & 1) as u8
        }).collect();
        prop_assert_eq!(il.deinterleave(&il.interleave(&bits)), bits);
    }

    #[test]
    fn crc_roundtrip_and_corruption(payload in proptest::collection::vec(any::<u8>(), 1..128), flip in any::<(usize, u8)>()) {
        let crc = Crc32::new();
        let framed = crc.append(&payload);
        prop_assert_eq!(crc.verify(&framed), Some(payload.as_slice()));
        let byte = flip.0 % framed.len();
        let bit = flip.1 % 8;
        let mut corrupted = framed.clone();
        corrupted[byte] ^= 1 << bit;
        prop_assert!(crc.verify(&corrupted).is_none());
    }

    #[test]
    fn erasures_never_beat_knowledge(mut data in arb_bits(120), stride in 9usize..25) {
        // Erasing bits at a stride the code can bridge must still decode.
        data.extend_from_slice(&[0; 6]);
        let coded = ConvEncoder::new().encode(&data);
        let mut llrs = ideal_llrs(&coded);
        for i in (0..llrs.len()).step_by(stride) {
            llrs[i] = 0.0;
        }
        prop_assert_eq!(ViterbiDecoder::new().decode(&llrs, true), data);
    }
}
