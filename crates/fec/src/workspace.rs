//! Reusable scratch buffers for the FEC chain.
//!
//! Every transform in this crate allocates its output when called through
//! the owned API (`encode`, `decode`, `interleave`, …). The `*_into`
//! variants introduced alongside them write into caller-owned buffers
//! instead, so a Monte-Carlo loop that decodes millions of frames touches
//! the allocator only while the buffers grow to their steady-state size.
//!
//! The workspaces here are plain bags of `Vec`s: no pooling, no
//! interior mutability. Ownership stays with the caller (one workspace per
//! session or per thread), which keeps the reuse story trivially
//! data-race-free and — because every `*_into` method fully overwrites the
//! region it returns — deterministic regardless of what a previous frame
//! left behind.

/// Scratch for [`crate::ViterbiDecoder::decode_into`]: the per-step
/// traceback bitsets.
#[derive(Debug, Clone, Default)]
pub struct ViterbiWorkspace {
    /// One 64-bit predecessor bitset per trellis step.
    pub(crate) prev_lsbs: Vec<u64>,
}

impl ViterbiWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the traceback scratch for a `steps`-step trellis and returns
    /// it, so staged pipelines can hand the decoder a bare slice (e.g. via
    /// [`crate::LaneFrame`]) without reaching into the workspace.
    pub fn prepared(&mut self, steps: usize) -> &mut [u64] {
        self.prev_lsbs.clear();
        self.prev_lsbs.resize(steps, 0);
        &mut self.prev_lsbs
    }
}

/// SoA staging for the batch-of-frames Viterbi kernel
/// ([`crate::ViterbiDecoder::decode_lockstep`]): the soft bits of one
/// lane group of frames transposed so position `i` of every frame is
/// contiguous (`soa_llrs[i * LANES + lane]`), which turns the lockstep
/// kernel's per-step loads into plain lane reads, plus the lane-major
/// survivor masks the lockstep traceback walks (`mask_rows[t * STATES +
/// state]`, bit `lane` = winning predecessor LSB).
///
/// One `SymbolBatch` belongs to whoever drives a batch of frames — an
/// engine worker decoding several sessions' symbols per instruction, or a
/// bench loop — not to any single session's [`FecWorkspace`], because the
/// batch spans sessions by design. The buffers grow to the largest lane
/// group ever staged and are then reused allocation-free (gated by
/// `alloc_gate --check`).
#[derive(Debug, Clone, Default)]
pub struct SymbolBatch {
    /// Lane-transposed soft bits of the current lane group.
    pub(crate) soa_llrs: Vec<f64>,
    /// Per-step, per-state winner masks of the current lane group: byte
    /// `t * STATES + state` holds one survivor bit per lane.
    pub(crate) mask_rows: Vec<u8>,
}

impl SymbolBatch {
    /// Creates an empty batch; the staging buffer grows on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Scratch for a full DATA-field encode or decode pass
/// (deinterleave → depuncture → Viterbi, or encode → puncture).
///
/// The fields are public so higher layers (`cos-phy`) can thread
/// individual buffers through a staged pipeline without borrowing the
/// whole struct at once.
#[derive(Debug, Clone, Default)]
pub struct FecWorkspace {
    /// Soft bits after de-interleaving.
    pub deinterleaved: Vec<f64>,
    /// Soft bits after de-puncturing (mother-code order).
    pub mother_llrs: Vec<f64>,
    /// Mother-code hard bits on the encode side.
    pub mother_bits: Vec<u8>,
    /// Viterbi output (scrambled data bits).
    pub decoded: Vec<u8>,
    /// Traceback scratch for the Viterbi decoder.
    pub viterbi: ViterbiWorkspace,
}

impl FecWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}
