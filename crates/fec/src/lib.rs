//! The IEEE 802.11a forward-error-correction stack.
//!
//! This crate implements, bit-exactly where the standard specifies test
//! vectors, every bit-level transform between a MAC payload and the
//! constellation mapper:
//!
//! * [`bits`] — LSB-first bit packing (802.11 transmits the LSB of each
//!   octet first),
//! * [`scrambler`] — the `x^7 + x^4 + 1` data scrambler,
//! * [`conv`] — the rate-1/2, constraint-length-7 convolutional encoder
//!   (generators 133/171 octal),
//! * [`puncture`] — the 2/3 and 3/4 puncturing patterns and their soft
//!   de-puncturing inverses,
//! * [`interleaver`] — the two-permutation per-OFDM-symbol block
//!   interleaver,
//! * [`viterbi`] — a soft-decision Viterbi decoder. Feeding a **zero LLR**
//!   for a bit marks it as an *erasure*: that bit contributes nothing to any
//!   path metric, which is exactly the erasure Viterbi decoding (EVD) of the
//!   CoS paper (§III-E, Eq. 7) — the decoder itself is unchanged. The
//!   add-compare-select kernel has scalar, 4-states-per-op lane, and
//!   4-frames-per-op lockstep implementations that emit identical bits
//!   (see `docs/KERNELS.md`),
//! * [`crc`] — CRC-32 (the 802.11 FCS).
//!
//! # Examples
//!
//! A noiseless encode→decode round trip:
//!
//! ```
//! use cos_fec::conv::ConvEncoder;
//! use cos_fec::viterbi::ViterbiDecoder;
//!
//! let data = vec![1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 0, 0, 0, 0, 0]; // incl. 6 tail zeros
//! let coded = ConvEncoder::new().encode(&data);
//! // Ideal LLRs: bit 0 → +1, bit 1 → -1.
//! let llrs: Vec<f64> = coded.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect();
//! let decoded = ViterbiDecoder::new().decode(&llrs, true);
//! assert_eq!(decoded, data);
//! ```

#![warn(missing_docs)]

pub mod bits;
pub mod conv;
pub mod crc;
pub mod interleaver;
pub mod puncture;
pub mod scrambler;
pub mod viterbi;
pub mod workspace;

pub use conv::ConvEncoder;
pub use crc::Crc32;
pub use interleaver::Interleaver;
pub use puncture::CodeRate;
pub use scrambler::Scrambler;
pub use viterbi::{LaneFrame, ViterbiDecoder};
pub use workspace::{FecWorkspace, SymbolBatch, ViterbiWorkspace};
