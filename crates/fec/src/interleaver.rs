//! The per-OFDM-symbol block interleaver of IEEE 802.11a (Clause 17.3.5.7).
//!
//! Coded bits are interleaved in blocks of one OFDM symbol (`Ncbps` bits) by
//! two permutations: the first spreads adjacent coded bits onto
//! non-adjacent subcarriers, the second alternates them between more- and
//! less-significant constellation bits. For CoS the interleaver matters
//! doubly: the zero-LLR bits of an erased (silence) symbol are *spread
//! across the codeword* by de-interleaving, which is what lets the Viterbi
//! decoder bridge them (paper §III-E).

/// A block interleaver for a fixed `(Ncbps, Nbpsc)` pair.
///
/// # Examples
///
/// ```
/// use cos_fec::Interleaver;
///
/// // 16QAM: 192 coded bits per symbol, 4 bits per subcarrier.
/// let il = Interleaver::new(192, 4);
/// let bits: Vec<u8> = (0..192).map(|i| (i % 2) as u8).collect();
/// let tx = il.interleave(&bits);
/// let rx = il.deinterleave(&tx);
/// assert_eq!(rx, bits);
/// ```
#[derive(Debug, Clone)]
pub struct Interleaver {
    ncbps: usize,
    /// `perm[k]` = position after interleaving of coded bit `k`.
    perm: Vec<usize>,
    /// Inverse permutation.
    inv: Vec<usize>,
}

impl Interleaver {
    /// Builds the interleaver for `ncbps` coded bits per OFDM symbol and
    /// `nbpsc` coded bits per subcarrier.
    ///
    /// # Panics
    ///
    /// Panics if `ncbps` is not a multiple of 16 (the standard's row count)
    /// or `nbpsc` is not one of 1, 2, 4, 6.
    pub fn new(ncbps: usize, nbpsc: usize) -> Self {
        assert!(ncbps.is_multiple_of(16), "Ncbps {ncbps} must be a multiple of 16");
        assert!(matches!(nbpsc, 1 | 2 | 4 | 6), "Nbpsc must be 1, 2, 4 or 6, got {nbpsc}");
        let s = (nbpsc / 2).max(1);
        let mut perm = vec![0usize; ncbps];
        for (k, slot) in perm.iter_mut().enumerate() {
            // First permutation (Eq. 17-17).
            let i = (ncbps / 16) * (k % 16) + k / 16;
            // Second permutation (Eq. 17-18).
            *slot = s * (i / s) + (i + ncbps - (16 * i) / ncbps) % s;
        }
        let mut inv = vec![0usize; ncbps];
        for (k, &j) in perm.iter().enumerate() {
            inv[j] = k;
        }
        Interleaver { ncbps, perm, inv }
    }

    /// Coded bits per OFDM symbol this interleaver was built for.
    pub fn ncbps(&self) -> usize {
        self.ncbps
    }

    /// Interleaves a whole frame symbol-block by symbol-block.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of `Ncbps`.
    pub fn interleave(&self, bits: &[u8]) -> Vec<u8> {
        self.apply(bits, &self.perm)
    }

    /// [`Interleaver::interleave`] writing into a caller-owned buffer,
    /// which is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of `Ncbps`.
    pub fn interleave_into(&self, bits: &[u8], out: &mut Vec<u8>) {
        self.apply_into(bits, &self.perm, out);
    }

    /// De-interleaves hard bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of `Ncbps`.
    pub fn deinterleave(&self, bits: &[u8]) -> Vec<u8> {
        self.apply(bits, &self.inv)
    }

    /// [`Interleaver::deinterleave`] writing into a caller-owned buffer,
    /// which is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of `Ncbps`.
    pub fn deinterleave_into(&self, bits: &[u8], out: &mut Vec<u8>) {
        self.apply_into(bits, &self.inv, out);
    }

    /// De-interleaves soft values (LLRs); zero-LLR erasures travel with
    /// their positions.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is not a multiple of `Ncbps`.
    pub fn deinterleave_soft(&self, llrs: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.deinterleave_soft_into(llrs, &mut out);
        out
    }

    /// [`Interleaver::deinterleave_soft`] writing into a caller-owned
    /// buffer, which is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is not a multiple of `Ncbps`.
    pub fn deinterleave_soft_into(&self, llrs: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.resize(llrs.len(), 0.0);
        self.deinterleave_soft_to_slice(llrs, out);
    }

    /// [`Interleaver::deinterleave_soft`] writing into a caller-owned
    /// slice — the allocation-free core for fixed-size fields like
    /// SIGNAL.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is not a multiple of `Ncbps` or `out` has
    /// a different length.
    pub fn deinterleave_soft_to_slice(&self, llrs: &[f64], out: &mut [f64]) {
        assert!(
            llrs.len().is_multiple_of(self.ncbps),
            "length {} is not a multiple of Ncbps {}",
            llrs.len(),
            self.ncbps
        );
        assert_eq!(out.len(), llrs.len(), "output slice must match the input length");
        for (block_idx, block) in llrs.chunks_exact(self.ncbps).enumerate() {
            let base = block_idx * self.ncbps;
            for (j, &v) in block.iter().enumerate() {
                out[base + self.inv[j]] = v;
            }
        }
    }

    /// [`Interleaver::interleave`] writing into a caller-owned slice —
    /// the allocation-free core for fixed-size fields like SIGNAL.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of `Ncbps` or `out` has
    /// a different length.
    pub fn interleave_to_slice(&self, bits: &[u8], out: &mut [u8]) {
        self.apply_to_slice(bits, &self.perm, out);
    }

    fn apply(&self, bits: &[u8], table: &[usize]) -> Vec<u8> {
        let mut out = Vec::new();
        self.apply_into(bits, table, &mut out);
        out
    }

    fn apply_into(&self, bits: &[u8], table: &[usize], out: &mut Vec<u8>) {
        out.clear();
        out.resize(bits.len(), 0);
        self.apply_to_slice(bits, table, out);
    }

    fn apply_to_slice(&self, bits: &[u8], table: &[usize], out: &mut [u8]) {
        assert!(
            bits.len().is_multiple_of(self.ncbps),
            "length {} is not a multiple of Ncbps {}",
            bits.len(),
            self.ncbps
        );
        assert_eq!(out.len(), bits.len(), "output slice must match the input length");
        for (block_idx, block) in bits.chunks_exact(self.ncbps).enumerate() {
            let base = block_idx * self.ncbps;
            for (k, &b) in block.iter().enumerate() {
                out[base + table[k]] = b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_configs() -> Vec<(usize, usize)> {
        // (Ncbps, Nbpsc) for BPSK, QPSK, 16QAM, 64QAM over 48 data subcarriers.
        vec![(48, 1), (96, 2), (192, 4), (288, 6)]
    }

    #[test]
    fn permutation_is_bijective() {
        for (ncbps, nbpsc) in all_configs() {
            let il = Interleaver::new(ncbps, nbpsc);
            let mut seen = vec![false; ncbps];
            for &j in &il.perm {
                assert!(!seen[j], "position {j} hit twice (Ncbps={ncbps})");
                seen[j] = true;
            }
        }
    }

    #[test]
    fn deinterleave_inverts_interleave() {
        for (ncbps, nbpsc) in all_configs() {
            let il = Interleaver::new(ncbps, nbpsc);
            let bits: Vec<u8> = (0..ncbps * 3).map(|i| ((i * 31) % 7 < 3) as u8).collect();
            assert_eq!(il.deinterleave(&il.interleave(&bits)), bits);
        }
    }

    #[test]
    fn soft_deinterleave_matches_hard() {
        let il = Interleaver::new(96, 2);
        let bits: Vec<u8> = (0..96).map(|i| (i % 3 == 0) as u8).collect();
        let tx = il.interleave(&bits);
        let soft: Vec<f64> = tx.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect();
        let rx_soft = il.deinterleave_soft(&soft);
        let rx_hard: Vec<u8> = rx_soft.iter().map(|&l| (l < 0.0) as u8).collect();
        assert_eq!(rx_hard, bits);
    }

    #[test]
    fn adjacent_coded_bits_are_spread_apart() {
        // The first permutation guarantees adjacent coded bits map to
        // subcarriers Ncbps/16 apart (before the second permutation, which
        // only moves bits within a subcarrier's bit group).
        let il = Interleaver::new(192, 4);
        for k in 0..191 {
            let d = (il.perm[k] as isize - il.perm[k + 1] as isize).unsigned_abs();
            assert!(d >= 192 / 16 - 2, "bits {k},{} land {d} apart", k + 1);
        }
    }

    #[test]
    fn bpsk_interleaver_is_pure_row_column() {
        // With s = 1 the second permutation is the identity.
        let il = Interleaver::new(48, 1);
        for k in 0..48 {
            assert_eq!(il.perm[k], 3 * (k % 16) + k / 16);
        }
    }

    #[test]
    fn multi_symbol_blocks_are_independent() {
        let il = Interleaver::new(48, 1);
        let a: Vec<u8> = (0..48).map(|i| (i % 2) as u8).collect();
        let b: Vec<u8> = (0..48).map(|i| (i % 5 == 0) as u8).collect();
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        let tx = il.interleave(&joined);
        assert_eq!(&tx[..48], il.interleave(&a).as_slice());
        assert_eq!(&tx[48..], il.interleave(&b).as_slice());
    }

    #[test]
    #[should_panic(expected = "multiple of Ncbps")]
    fn ragged_input_panics() {
        Interleaver::new(48, 1).interleave(&[0; 47]);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn bad_ncbps_panics() {
        Interleaver::new(50, 1);
    }
}
