//! LSB-first bit packing.
//!
//! IEEE 802.11 serialises each octet least-significant bit first; every
//! bit vector in this workspace follows that convention. Bits are stored one
//! per `u8` with values 0/1 — wasteful but transparent, and the simulator is
//! bound by FFT/Viterbi cost, not bit storage.

/// Expands bytes into bits, LSB of each byte first.
///
/// ```
/// use cos_fec::bits::bytes_to_bits;
/// assert_eq!(bytes_to_bits(&[0b0000_0101]), vec![1, 0, 1, 0, 0, 0, 0, 0]);
/// ```
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    append_bits_from_bytes(bytes, &mut bits);
    bits
}

/// Appends the bits of `bytes` (LSB of each byte first) to `bits` without
/// clearing it — the building block for assembling a DATA field in place.
pub fn append_bits_from_bytes(bytes: &[u8], bits: &mut Vec<u8>) {
    bits.reserve(bytes.len() * 8);
    for &byte in bytes {
        for i in 0..8 {
            bits.push((byte >> i) & 1);
        }
    }
}

/// Packs bits (LSB-first per byte) back into bytes.
///
/// # Panics
///
/// Panics if `bits.len()` is not a multiple of 8 or any value is not 0/1.
///
/// ```
/// use cos_fec::bits::{bits_to_bytes, bytes_to_bits};
/// let bytes = vec![0xA5, 0x3C];
/// assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
/// ```
pub fn bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::new();
    bits_to_bytes_into(bits, &mut bytes);
    bytes
}

/// [`bits_to_bytes`] writing into a caller-owned buffer, which is fully
/// overwritten.
///
/// # Panics
///
/// Panics if `bits.len()` is not a multiple of 8 or any value is not 0/1.
pub fn bits_to_bytes_into(bits: &[u8], bytes: &mut Vec<u8>) {
    assert!(bits.len().is_multiple_of(8), "bit count {} is not a whole number of octets", bits.len());
    bytes.clear();
    bytes.extend(bits.chunks_exact(8).map(|chunk| {
        chunk.iter().enumerate().fold(0u8, |byte, (i, &b)| {
            assert!(b <= 1, "bit values must be 0 or 1, got {b}");
            byte | (b << i)
        })
    }));
}

/// Writes the low `width` bits of `value` into a bit vector, LSB first.
pub fn push_field(bits: &mut Vec<u8>, value: u32, width: usize) {
    assert!(width <= 32, "field width {width} exceeds u32");
    for i in 0..width {
        bits.push(((value >> i) & 1) as u8);
    }
}

/// Reads a `width`-bit LSB-first field starting at `offset`.
///
/// # Panics
///
/// Panics if the field extends past the end of `bits`.
pub fn read_field(bits: &[u8], offset: usize, width: usize) -> u32 {
    assert!(width <= 32, "field width {width} exceeds u32");
    assert!(offset + width <= bits.len(), "field [{offset}, {}) out of range", offset + width);
    (0..width).fold(0u32, |v, i| v | ((bits[offset + i] as u32) << i))
}

/// Counts positions where two equal-length bit slices differ.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn hamming_distance(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming distance of unequal-length slices");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsb_first_expansion() {
        assert_eq!(bytes_to_bits(&[0x01]), vec![1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(bytes_to_bits(&[0x80]), vec![0, 0, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
    }

    #[test]
    #[should_panic(expected = "octets")]
    fn ragged_length_panics() {
        bits_to_bytes(&[1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "0 or 1")]
    fn invalid_bit_value_panics() {
        bits_to_bytes(&[2, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn field_roundtrip() {
        let mut bits = Vec::new();
        push_field(&mut bits, 0xABC, 12);
        push_field(&mut bits, 0x3, 2);
        assert_eq!(bits.len(), 14);
        assert_eq!(read_field(&bits, 0, 12), 0xABC);
        assert_eq!(read_field(&bits, 12, 2), 0x3);
    }

    #[test]
    fn field_is_lsb_first() {
        let mut bits = Vec::new();
        push_field(&mut bits, 0b110, 3);
        assert_eq!(bits, vec![0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_past_end_panics() {
        read_field(&[0, 1], 1, 2);
    }

    #[test]
    fn hamming() {
        assert_eq!(hamming_distance(&[0, 1, 1, 0], &[0, 1, 1, 0]), 0);
        assert_eq!(hamming_distance(&[0, 1, 1, 0], &[1, 1, 0, 0]), 2);
    }
}
