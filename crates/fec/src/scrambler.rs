//! The IEEE 802.11a data scrambler (Clause 17.3.5.4).
//!
//! The DATA field is XOR-ed with the output of the `x^7 + x^4 + 1` LFSR
//! ([`cos_dsp::Prbs127`]). Scrambling is an involution: applying the same
//! seeded scrambler twice restores the input, which is how the receiver
//! descrambles. The transmitter chooses a pseudo-random non-zero seed per
//! frame; the receiver recovers it from the seven zero SERVICE bits that are
//! transmitted first.

use cos_dsp::Prbs127;

/// A seeded 802.11a scrambler/descrambler.
///
/// # Examples
///
/// ```
/// use cos_fec::Scrambler;
///
/// let data = vec![1, 0, 1, 1, 0, 1, 0, 0];
/// let scrambled = Scrambler::new(0x5D).scramble(&data);
/// let restored = Scrambler::new(0x5D).scramble(&scrambled);
/// assert_eq!(restored, data);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Scrambler {
    lfsr: Prbs127,
}

impl Scrambler {
    /// Creates a scrambler with the given 7-bit non-zero seed.
    ///
    /// # Panics
    ///
    /// Panics if `seed` is zero or wider than 7 bits.
    pub fn new(seed: u8) -> Self {
        Scrambler { lfsr: Prbs127::new(seed) }
    }

    /// Scrambles (or descrambles) a bit sequence, consuming LFSR state.
    pub fn scramble(mut self, bits: &[u8]) -> Vec<u8> {
        bits.iter().map(|&b| b ^ self.lfsr.next_bit()).collect()
    }

    /// Scrambles in place, advancing the internal LFSR so the scrambler can
    /// be reused across consecutive spans of the same frame.
    pub fn scramble_in_place(&mut self, bits: &mut [u8]) {
        for b in bits.iter_mut() {
            *b ^= self.lfsr.next_bit();
        }
    }

    /// Recovers the transmitter's seed from the first 7 received scrambled
    /// bits, assuming the plaintext bits were zero (the SERVICE field's
    /// scrambler-init bits). Returns `None` if the implied seed is zero
    /// (an all-zero prefix cannot come from a valid seed).
    ///
    /// The LFSR output over the first 7 steps, XOR-ed with zero plaintext,
    /// *is* the keystream; running the register relation backwards yields the
    /// initial state.
    pub fn recover_seed(first7_scrambled: &[u8]) -> Option<u8> {
        assert!(first7_scrambled.len() >= 7, "need at least 7 bits to recover the seed");
        // keystream k_t = s6(t) ^ s3(t); state shifts left absorbing k_t.
        // Brute force over the 127 possible seeds is simplest and exact.
        (1u8..0x80).find(|&seed| {
            let mut lfsr = Prbs127::new(seed);
            first7_scrambled[..7].iter().all(|&b| b == lfsr.next_bit())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn involution_for_every_seed() {
        let data: Vec<u8> = (0..200).map(|i| ((i * 7) % 3 == 0) as u8).collect();
        for seed in [1u8, 0x5D, 0x7F, 0x2A] {
            let once = Scrambler::new(seed).scramble(&data);
            let twice = Scrambler::new(seed).scramble(&once);
            assert_eq!(twice, data);
        }
    }

    #[test]
    fn scrambling_changes_data() {
        let data = vec![0u8; 64];
        let scrambled = Scrambler::new(0x7F).scramble(&data);
        assert_ne!(scrambled, data);
        // Scrambling zeros exposes the keystream = PRBS sequence.
        let mut lfsr = Prbs127::new(0x7F);
        let keystream: Vec<u8> = (0..64).map(|_| lfsr.next_bit()).collect();
        assert_eq!(scrambled, keystream);
    }

    #[test]
    fn in_place_matches_owned() {
        let data: Vec<u8> = (0..50).map(|i| (i % 2) as u8).collect();
        let owned = Scrambler::new(0x33).scramble(&data);
        let mut s = Scrambler::new(0x33);
        let mut buf = data.clone();
        s.scramble_in_place(&mut buf[..25]);
        s.scramble_in_place(&mut buf[25..]);
        assert_eq!(buf, owned);
    }

    #[test]
    fn seed_recovery_from_service_prefix() {
        for seed in [0x11u8, 0x5D, 0x7F] {
            // Transmit 7 zero bits through the scrambler.
            let prefix = Scrambler::new(seed).scramble(&[0u8; 7]);
            assert_eq!(Scrambler::recover_seed(&prefix), Some(seed));
        }
    }

    #[test]
    fn seed_recovery_rejects_all_zero_prefix() {
        // An all-zero keystream prefix of length 7 never occurs for a valid
        // seed (the register would have to be zero).
        assert_eq!(Scrambler::recover_seed(&[0u8; 7]), None);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_seed_rejected() {
        Scrambler::new(0);
    }
}
