//! Puncturing patterns of IEEE 802.11a (Clause 17.3.5.6).
//!
//! Rates 2/3 and 3/4 are derived from the rate-1/2 mother code by deleting
//! ("puncturing") coded bits in a fixed periodic pattern. The receiver
//! re-inserts **zero LLRs** at the deleted positions (de-puncturing) — the
//! same null-metric mechanism erasure Viterbi decoding uses for silence
//! symbols, which is why the two compose cleanly in CoS.

/// Convolutional code rate after optional puncturing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeRate {
    /// Rate 1/2 — the unpunctured mother code.
    Half,
    /// Rate 2/3 — one bit punctured out of every four.
    TwoThirds,
    /// Rate 3/4 — two bits punctured out of every six.
    ThreeQuarters,
}

impl CodeRate {
    /// The keep-mask over one puncturing period of mother-code output bits,
    /// ordered `A1 B1 A2 B2 …` exactly as the encoder emits them.
    pub fn keep_mask(self) -> &'static [bool] {
        match self {
            CodeRate::Half => &[true, true],
            // Period A1 B1 A2 B2 → transmit A1 B1 A2 (drop B2).
            CodeRate::TwoThirds => &[true, true, true, false],
            // Period A1 B1 A2 B2 A3 B3 → transmit A1 B1 A2 B3 (drop B2, A3).
            CodeRate::ThreeQuarters => &[true, true, true, false, false, true],
        }
    }

    /// Numerator of the rate fraction.
    pub fn numerator(self) -> usize {
        match self {
            CodeRate::Half => 1,
            CodeRate::TwoThirds => 2,
            CodeRate::ThreeQuarters => 3,
        }
    }

    /// Denominator of the rate fraction.
    pub fn denominator(self) -> usize {
        match self {
            CodeRate::Half => 2,
            CodeRate::TwoThirds => 3,
            CodeRate::ThreeQuarters => 4,
        }
    }

    /// The rate as a float (data bits per coded bit).
    pub fn as_f64(self) -> f64 {
        self.numerator() as f64 / self.denominator() as f64
    }

    /// Punctures mother-code output down to the transmitted bit stream.
    ///
    /// # Panics
    ///
    /// Panics if `coded.len()` is not a multiple of the puncturing period
    /// (802.11a symbol padding guarantees it always is).
    pub fn puncture(self, coded: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.puncture_into(coded, &mut out);
        out
    }

    /// [`CodeRate::puncture`] writing into a caller-owned buffer, which is
    /// fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `coded.len()` is not a multiple of the puncturing period.
    pub fn puncture_into(self, coded: &[u8], out: &mut Vec<u8>) {
        let mask = self.keep_mask();
        assert!(
            coded.len().is_multiple_of(mask.len()),
            "coded length {} is not a multiple of the puncturing period {}",
            coded.len(),
            mask.len()
        );
        out.clear();
        out.extend(
            coded
                .iter()
                .zip(mask.iter().cycle())
                .filter_map(|(&bit, &keep)| keep.then_some(bit)),
        );
    }

    /// De-punctures received soft bits back to mother-code length by
    /// inserting `0.0` LLRs (erasures) at punctured positions.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is not a multiple of the per-period survivor
    /// count.
    pub fn depuncture(self, llrs: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.depuncture_into(llrs, &mut out);
        out
    }

    /// [`CodeRate::depuncture`] writing into a caller-owned buffer, which
    /// is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is not a multiple of the per-period survivor
    /// count.
    pub fn depuncture_into(self, llrs: &[f64], out: &mut Vec<f64>) {
        let mask = self.keep_mask();
        let survivors = mask.iter().filter(|&&k| k).count();
        assert!(
            llrs.len().is_multiple_of(survivors),
            "received length {} is not a multiple of {survivors} survivors per period",
            llrs.len()
        );
        let periods = llrs.len() / survivors;
        out.clear();
        out.reserve(periods * mask.len());
        let mut it = llrs.iter();
        for _ in 0..periods {
            for &keep in mask {
                if keep {
                    out.push(*it.next().expect("length checked above"));
                } else {
                    out.push(0.0);
                }
            }
        }
    }

    /// Number of transmitted bits produced from `n_coded` mother-code bits.
    ///
    /// # Panics
    ///
    /// Panics if `n_coded` is not a multiple of the puncturing period.
    pub fn punctured_len(self, n_coded: usize) -> usize {
        let mask = self.keep_mask();
        assert!(n_coded.is_multiple_of(mask.len()), "length not period-aligned");
        let survivors = mask.iter().filter(|&&k| k).count();
        n_coded / mask.len() * survivors
    }
}

impl std::fmt::Display for CodeRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.numerator(), self.denominator())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_rate_is_identity() {
        let coded = vec![1, 0, 1, 1, 0, 0];
        assert_eq!(CodeRate::Half.puncture(&coded), coded);
        let llrs = vec![1.0, -1.0, 0.5, -0.5];
        assert_eq!(CodeRate::Half.depuncture(&llrs), llrs);
    }

    #[test]
    fn two_thirds_drops_every_fourth() {
        // A1 B1 A2 B2 A3 B3 A4 B4 → A1 B1 A2 | A3 B3 A4
        let coded = vec![1, 2, 3, 4, 5, 6, 7, 8]
            .into_iter()
            .map(|x| (x % 2) as u8)
            .collect::<Vec<_>>();
        let punctured = CodeRate::TwoThirds.puncture(&coded);
        assert_eq!(punctured.len(), 6);
        assert_eq!(punctured, vec![coded[0], coded[1], coded[2], coded[4], coded[5], coded[6]]);
    }

    #[test]
    fn three_quarters_pattern() {
        // A1 B1 A2 B2 A3 B3 → A1 B1 A2 B3
        let coded: Vec<u8> = vec![1, 1, 0, 1, 1, 0];
        assert_eq!(CodeRate::ThreeQuarters.puncture(&coded), vec![1, 1, 0, 0]);
    }

    #[test]
    fn depuncture_inserts_zero_llrs_at_dropped_positions() {
        let llrs = vec![3.0, -2.0, 1.5, 0.5];
        let restored = CodeRate::ThreeQuarters.depuncture(&llrs);
        assert_eq!(restored, vec![3.0, -2.0, 1.5, 0.0, 0.0, 0.5]);
    }

    #[test]
    fn puncture_then_depuncture_preserves_survivors() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let period = rate.keep_mask().len();
            let coded: Vec<u8> = (0..period * 10).map(|i| (i % 2) as u8).collect();
            let tx = rate.puncture(&coded);
            let soft: Vec<f64> = tx.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect();
            let restored = rate.depuncture(&soft);
            assert_eq!(restored.len(), coded.len());
            // Every surviving position carries its original sign; punctured
            // positions are exactly the zeros.
            let mask = rate.keep_mask();
            for (i, &llr) in restored.iter().enumerate() {
                if mask[i % period] {
                    let want = if coded[i] == 0 { 1.0 } else { -1.0 };
                    assert_eq!(llr, want);
                } else {
                    assert_eq!(llr, 0.0);
                }
            }
        }
    }

    #[test]
    fn rate_fractions() {
        assert_eq!(CodeRate::Half.as_f64(), 0.5);
        assert_eq!(CodeRate::TwoThirds.to_string(), "2/3");
        assert_eq!(CodeRate::ThreeQuarters.as_f64(), 0.75);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn misaligned_puncture_panics() {
        CodeRate::ThreeQuarters.puncture(&[0, 1, 0]);
    }

    #[test]
    fn punctured_len_matches_actual() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let period = rate.keep_mask().len();
            let n = period * 12;
            let coded = vec![0u8; n];
            assert_eq!(rate.punctured_len(n), rate.puncture(&coded).len());
        }
    }
}
