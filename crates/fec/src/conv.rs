//! The rate-1/2, constraint-length-7 convolutional encoder of IEEE 802.11a
//! (Clause 17.3.5.5), generator polynomials `g0 = 133₈`, `g1 = 171₈`.
//!
//! Output bits are emitted in (A, B) pairs: `coded[2t] = A_t`,
//! `coded[2t+1] = B_t`. Higher rates are obtained by [`crate::puncture`].

/// Generator polynomial A, `133₈ = 1011011₂` (current input in the MSB).
pub const GEN_A: u8 = 0o133;
/// Generator polynomial B, `171₈ = 1111001₂`.
pub const GEN_B: u8 = 0o171;
/// Constraint length `K = 7` (6 memory bits).
pub const CONSTRAINT: usize = 7;
/// Number of trellis states, `2^(K-1)`.
pub const STATES: usize = 1 << (CONSTRAINT - 1);

#[inline]
const fn parity(x: u8) -> u8 {
    (x.count_ones() & 1) as u8
}

/// Computes the (A, B) output pair for a 7-bit window
/// `input << 6 | state`, where `state` holds the previous six inputs
/// (most recent in bit 5).
#[inline]
pub const fn branch_output(state: u8, input: u8) -> (u8, u8) {
    let window = (input << 6) | state;
    (parity(window & GEN_A), parity(window & GEN_B))
}

/// Advances the 6-bit encoder state by one input bit.
#[inline]
pub const fn next_state(state: u8, input: u8) -> u8 {
    ((input << 5) | (state >> 1)) & 0x3F
}

/// The 802.11a convolutional encoder.
///
/// The encoder always starts from the all-zero state; frames that append six
/// zero *tail bits* (as the 802.11 DATA field does) also end in the zero
/// state, which the Viterbi decoder exploits.
///
/// # Examples
///
/// ```
/// use cos_fec::ConvEncoder;
///
/// let coded = ConvEncoder::new().encode(&[1, 0, 1, 1]);
/// assert_eq!(coded.len(), 8); // rate 1/2
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvEncoder;

impl ConvEncoder {
    /// Creates an encoder (stateless; provided for API symmetry with the
    /// decoder).
    pub fn new() -> Self {
        ConvEncoder
    }

    /// Encodes `data` at rate 1/2, returning `2 × data.len()` coded bits.
    ///
    /// # Panics
    ///
    /// Panics if any input value is not 0 or 1.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(data, &mut out);
        out
    }

    /// [`ConvEncoder::encode`] writing into a caller-owned buffer, which
    /// is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if any input value is not 0 or 1.
    pub fn encode_into(&self, data: &[u8], out: &mut Vec<u8>) {
        out.clear();
        out.resize(data.len() * 2, 0);
        self.encode_to_slice(data, out);
    }

    /// [`ConvEncoder::encode`] writing into a caller-owned slice — the
    /// allocation-free core for fixed-size fields like SIGNAL.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != 2 × data.len()` or any input bit is not
    /// 0 or 1.
    pub fn encode_to_slice(&self, data: &[u8], out: &mut [u8]) {
        assert_eq!(out.len(), data.len() * 2, "rate-1/2 output is twice the input length");
        let mut state = 0u8;
        for (i, &bit) in data.iter().enumerate() {
            assert!(bit <= 1, "input bits must be 0 or 1, got {bit}");
            let (a, b) = branch_output(state, bit);
            out[2 * i] = a;
            out[2 * i + 1] = b;
            state = next_state(state, bit);
        }
    }

    /// Encodes and reports the final encoder state (useful in tests for
    /// verifying tail-bit termination).
    pub fn encode_with_final_state(&self, data: &[u8]) -> (Vec<u8>, u8) {
        let coded = self.encode(data);
        let state = data
            .iter()
            .fold(0u8, |s, &b| next_state(s, b));
        (coded, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_response_matches_generators() {
        // A single 1 followed by zeros traces out the generator taps:
        // A outputs = 1011011 (133₈ MSB-first), B outputs = 1111001 (171₈).
        let coded = ConvEncoder::new().encode(&[1, 0, 0, 0, 0, 0, 0]);
        let a: Vec<u8> = coded.iter().step_by(2).copied().collect();
        let b: Vec<u8> = coded.iter().skip(1).step_by(2).copied().collect();
        assert_eq!(a, vec![1, 0, 1, 1, 0, 1, 1]);
        assert_eq!(b, vec![1, 1, 1, 1, 0, 0, 1]);
    }

    #[test]
    fn all_zero_input_gives_all_zero_output() {
        assert!(ConvEncoder::new().encode(&[0; 32]).iter().all(|&b| b == 0));
    }

    #[test]
    fn encoder_is_linear_over_gf2() {
        let enc = ConvEncoder::new();
        let x: Vec<u8> = (0..40).map(|i| ((i * 3) % 5 == 0) as u8).collect();
        let y: Vec<u8> = (0..40).map(|i| ((i * 7) % 3 == 0) as u8).collect();
        let xy: Vec<u8> = x.iter().zip(&y).map(|(a, b)| a ^ b).collect();
        let cx = enc.encode(&x);
        let cy = enc.encode(&y);
        let cxy = enc.encode(&xy);
        let sum: Vec<u8> = cx.iter().zip(&cy).map(|(a, b)| a ^ b).collect();
        assert_eq!(cxy, sum);
    }

    #[test]
    fn tail_bits_return_to_zero_state() {
        let mut data: Vec<u8> = (0..64).map(|i| ((i * 11) % 4 == 1) as u8).collect();
        data.extend_from_slice(&[0; 6]);
        let (_, state) = ConvEncoder::new().encode_with_final_state(&data);
        assert_eq!(state, 0);
    }

    #[test]
    fn state_transition_shifts_register() {
        assert_eq!(next_state(0b000000, 1), 0b100000);
        assert_eq!(next_state(0b100000, 0), 0b010000);
        assert_eq!(next_state(0b111111, 1), 0b111111);
        assert_eq!(next_state(0b111111, 0), 0b011111);
    }

    #[test]
    fn branch_outputs_cover_both_polynomials() {
        // With all-ones window the outputs are the parities of the
        // generators themselves: 133₈ has 5 taps (odd), 171₈ has 5 taps.
        let (a, b) = branch_output(0x3F, 1);
        assert_eq!((a, b), (1, 1));
        let (a, b) = branch_output(0, 0);
        assert_eq!((a, b), (0, 0));
    }

    #[test]
    #[should_panic(expected = "0 or 1")]
    fn invalid_bit_panics() {
        ConvEncoder::new().encode(&[0, 3]);
    }

    #[test]
    fn free_distance_lower_bound() {
        // The 133/171 code has free distance 10: any nonzero terminated
        // input must produce at least 10 coded ones. Check short inputs
        // exhaustively (7 data bits + 6 tail zeros).
        let enc = ConvEncoder::new();
        for pattern in 1u16..128 {
            let mut data: Vec<u8> = (0..7).map(|i| ((pattern >> i) & 1) as u8).collect();
            data.extend_from_slice(&[0; 6]);
            let weight: usize = enc.encode(&data).iter().map(|&b| b as usize).sum();
            assert!(weight >= 10, "pattern {pattern:#09b} has weight {weight}");
        }
    }
}
