//! CRC-32 — the IEEE 802.11 frame check sequence (FCS).
//!
//! Standard reflected CRC-32 (polynomial `0x04C11DB7`, init `0xFFFFFFFF`,
//! final XOR `0xFFFFFFFF`), identical to the CRC of Ethernet and zlib. The
//! CoS receiver computes per-subcarrier EVM only for frames that pass this
//! check (paper §III-D), because only then are the transmitted
//! constellation points known.

/// A table-driven CRC-32 engine.
///
/// # Examples
///
/// ```
/// use cos_fec::Crc32;
///
/// let crc = Crc32::new();
/// assert_eq!(crc.checksum(b"123456789"), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    table: [u32; 256],
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Reflected polynomial of `0x04C11DB7`.
    pub const POLY_REFLECTED: u32 = 0xEDB8_8320;

    /// Builds the 256-entry lookup table.
    pub fn new() -> Self {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ Self::POLY_REFLECTED
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        Crc32 { table }
    }

    /// Computes the CRC-32 of `data`.
    pub fn checksum(&self, data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &byte in data {
            crc = (crc >> 8) ^ self.table[((crc ^ byte as u32) & 0xFF) as usize];
        }
        !crc
    }

    /// Appends the 4-byte FCS (little-endian, as transmitted) to a payload.
    pub fn append(&self, payload: &[u8]) -> Vec<u8> {
        let mut framed = Vec::new();
        self.append_into(payload, &mut framed);
        framed
    }

    /// [`Crc32::append`] writing into a caller-owned buffer, which is
    /// fully overwritten with `payload ‖ FCS`.
    pub fn append_into(&self, payload: &[u8], framed: &mut Vec<u8>) {
        framed.clear();
        framed.extend_from_slice(payload);
        framed.extend_from_slice(&self.checksum(payload).to_le_bytes());
    }

    /// Checks a frame whose last 4 bytes are the FCS; returns the payload on
    /// success.
    pub fn verify<'a>(&self, framed: &'a [u8]) -> Option<&'a [u8]> {
        if framed.len() < 4 {
            return None;
        }
        let (payload, fcs) = framed.split_at(framed.len() - 4);
        let expect = self.checksum(payload).to_le_bytes();
        (fcs == expect).then_some(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        assert_eq!(Crc32::new().checksum(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(Crc32::new().checksum(b""), 0);
    }

    #[test]
    fn append_verify_roundtrip() {
        let crc = Crc32::new();
        let payload = b"the quick brown fox".to_vec();
        let framed = crc.append(&payload);
        assert_eq!(framed.len(), payload.len() + 4);
        assert_eq!(crc.verify(&framed), Some(payload.as_slice()));
    }

    #[test]
    fn detects_single_bit_errors_anywhere() {
        let crc = Crc32::new();
        let payload: Vec<u8> = (0..64).collect();
        let framed = crc.append(&payload);
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut corrupted = framed.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(crc.verify(&corrupted).is_none(), "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn detects_swapped_bytes() {
        let crc = Crc32::new();
        let framed = crc.append(b"abcdef");
        let mut swapped = framed.clone();
        swapped.swap(1, 3);
        assert!(crc.verify(&swapped).is_none());
    }

    #[test]
    fn too_short_frame_fails() {
        assert!(Crc32::new().verify(&[1, 2, 3]).is_none());
    }
}
