//! Soft-decision Viterbi decoding of the 802.11a convolutional code, with
//! native erasure support (EVD).
//!
//! # LLR convention
//!
//! A soft input `llr[i] > 0` means coded bit `i` is more likely **0**;
//! `llr[i] < 0` means more likely **1**; `llr[i] == 0` is an **erasure** —
//! the bit contributes nothing to any path metric. Erasures arise from
//! three sources that all compose through the same mechanism:
//!
//! 1. de-puncturing (positions the transmitter never sent),
//! 2. CoS silence symbols flagged by the energy detector (paper Eq. 7),
//! 3. any upstream processing that wants to neutralise a bit.
//!
//! This is precisely the paper's erasure Viterbi decoding: "the proposed
//! EVD does not modify the existing Viterbi decoder, but only the
//! calculation of bit metrics" — the add-compare-select kernel below is a
//! textbook Viterbi.
//!
//! # Hard decisions
//!
//! [`ViterbiDecoder::decode_hard`] converts hard bits to ±1 LLRs, giving
//! the classical error-only decoder used by the `ablation_evd` experiment.

use crate::conv::{branch_output, next_state, STATES};
use crate::workspace::ViterbiWorkspace;
use std::sync::OnceLock;

/// A soft-decision Viterbi decoder for the 133/171 rate-1/2 code.
///
/// The decoder is stateless between calls; construct once and reuse.
///
/// # Examples
///
/// ```
/// use cos_fec::{ConvEncoder, ViterbiDecoder};
///
/// let mut data = vec![1, 1, 0, 1, 0, 0, 1, 0];
/// data.extend_from_slice(&[0; 6]); // tail
/// let coded = ConvEncoder::new().encode(&data);
/// let mut llrs: Vec<f64> = coded.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect();
/// llrs[3] = 0.0; // erase one coded bit — EVD bridges it
/// llrs[10] = -llrs[10]; // flip another — classical error correction
/// assert_eq!(ViterbiDecoder::new().decode(&llrs, true), data);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ViterbiDecoder {
    _private: (),
}

/// Butterfly ACS lookup, built once per process: per source state, the
/// ±1 signs (`+1` ⇔ coded 0) of the two coded bits emitted for input 0,
/// as two parallel arrays so the ACS loop is pure vectorisable arithmetic.
///
/// Two structural facts of the 133/171 trellis make this one table enough
/// for the whole add-compare-select step:
///
/// * sources `2j` and `2j + 1` both fan out exactly to destinations `j`
///   (input 0) and `j + 32` (input 1), since `dest = (input << 5) | (src >> 1)`;
/// * both generators tap the input bit, so the input-1 coded pair is the
///   complement of the input-0 pair and its branch metric the negation.
fn butterfly_signs() -> &'static ([f64; STATES], [f64; STATES]) {
    static TABLE: OnceLock<([f64; STATES], [f64; STATES])> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut sa = [0.0; STATES];
        let mut sb = [0.0; STATES];
        for src in 0..STATES {
            let (a0, b0) = branch_output(src as u8, 0);
            sa[src] = if a0 == 0 { 1.0 } else { -1.0 };
            sb[src] = if b0 == 0 { 1.0 } else { -1.0 };
            // The two invariants the ACS kernel relies on.
            let (a1, b1) = branch_output(src as u8, 1);
            debug_assert_eq!((a1, b1), (a0 ^ 1, b0 ^ 1));
            debug_assert_eq!(next_state(src as u8, 0) as usize, src >> 1);
            debug_assert_eq!(next_state(src as u8, 1) as usize, (src >> 1) | 32);
        }
        (sa, sb)
    })
}

impl ViterbiDecoder {
    /// Creates a decoder.
    pub fn new() -> Self {
        ViterbiDecoder::default()
    }

    /// Decodes a frame of soft coded bits (pairs `A_t B_t`, so
    /// `llrs.len()` must be even). Returns one data bit per pair.
    ///
    /// If `terminated` is `true` the trellis is traced back from state 0
    /// (the frame ended in six tail zeros); otherwise from the best final
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is odd or zero.
    pub fn decode(&self, llrs: &[f64], terminated: bool) -> Vec<u8> {
        let mut ws = ViterbiWorkspace::new();
        let mut out = Vec::new();
        self.decode_into(llrs, terminated, &mut ws, &mut out);
        out
    }

    /// [`ViterbiDecoder::decode`] writing into caller-owned buffers.
    ///
    /// `ws` holds the traceback scratch and `out` receives the decoded
    /// bits; both are fully overwritten, so a dirty workspace from a
    /// previous frame produces bit-identical output to a fresh one.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is odd or zero.
    pub fn decode_into(
        &self,
        llrs: &[f64],
        terminated: bool,
        ws: &mut ViterbiWorkspace,
        out: &mut Vec<u8>,
    ) {
        assert!(!llrs.is_empty(), "cannot decode an empty frame");
        assert!(llrs.len().is_multiple_of(2), "soft input length {} is not a whole number of (A,B) pairs", llrs.len());
        let steps = llrs.len() / 2;
        ws.prev_lsbs.clear();
        ws.prev_lsbs.resize(steps, 0);
        out.clear();
        out.resize(steps, 0);
        self.decode_to_slices(llrs, terminated, &mut ws.prev_lsbs, out);
    }

    /// [`ViterbiDecoder::decode`] writing into caller-owned slices — the
    /// allocation-free core for fixed-size fields like SIGNAL.
    ///
    /// `prev_lsbs` is the traceback scratch and `out` receives the
    /// decoded bits; both must hold exactly `llrs.len() / 2` elements
    /// and are fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is odd or zero, or either slice has the
    /// wrong length.
    pub fn decode_to_slices(
        &self,
        llrs: &[f64],
        terminated: bool,
        prev_lsbs: &mut [u64],
        out: &mut [u8],
    ) {
        assert!(!llrs.is_empty(), "cannot decode an empty frame");
        assert!(llrs.len().is_multiple_of(2), "soft input length {} is not a whole number of (A,B) pairs", llrs.len());
        let steps = llrs.len() / 2;
        assert_eq!(prev_lsbs.len(), steps, "traceback scratch must hold one word per step");
        assert_eq!(out.len(), steps, "output must hold one bit per step");
        let (sa, sb) = butterfly_signs();

        const NEG: f64 = f64::NEG_INFINITY;
        let mut metric = [NEG; STATES];
        metric[0] = 0.0; // encoder starts from the zero state
        let mut next = [NEG; STATES];
        // Track the predecessor implicitly: dest = (input<<5)|(src>>1), so
        // src = ((dest & 0x1F) << 1) | prev_lsb; we store the winning
        // prev_lsb per destination state in a per-step bitset. The winning
        // *input* needs no storage at all — it is `dest >> 5`.
        for t in 0..steps {
            let la = llrs[2 * t];
            let lb = llrs[2 * t + 1];
            let mut lsb_bits = 0u64;
            for j in 0..STATES / 2 {
                let m0 = metric[2 * j];
                let m1 = metric[2 * j + 1];
                // Branch metric of the input-0 edge out of each source.
                let t0 = sa[2 * j] * la + sb[2 * j] * lb;
                let t1 = sa[2 * j + 1] * la + sb[2 * j + 1] * lb;
                // Destination j takes input 0; destination j+32 takes
                // input 1, whose branch metric is the negation. Strict `>`
                // keeps the lower-numbered predecessor on ties, matching
                // the src-ascending strict-improvement scan this butterfly
                // kernel replaced.
                let (a0, a1) = (m0 + t0, m1 + t1);
                let odd_wins_lo = a1 > a0;
                next[j] = if odd_wins_lo { a1 } else { a0 };
                lsb_bits |= (odd_wins_lo as u64) << j;
                let (b0, b1) = (m0 - t0, m1 - t1);
                let odd_wins_hi = b1 > b0;
                next[j + 32] = if odd_wins_hi { b1 } else { b0 };
                lsb_bits |= (odd_wins_hi as u64) << (j + 32);
            }
            prev_lsbs[t] = lsb_bits;
            std::mem::swap(&mut metric, &mut next);
        }

        // Choose the traceback start state.
        let mut state = if terminated {
            0usize
        } else {
            metric
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("metrics are never NaN"))
                .map(|(s, _)| s)
                .expect("STATES > 0")
        };

        // Trace back. The input bit at step t is the top bit of the state
        // the trellis landed in.
        for t in (0..steps).rev() {
            out[t] = (state >> 5) as u8;
            let prev_lsb = ((prev_lsbs[t] >> state) & 1) as usize;
            state = ((state & 0x1F) << 1) | prev_lsb;
        }
    }

    /// Decodes hard bits (0/1) by mapping them to ±1 LLRs — the classical
    /// error-only decoder.
    ///
    /// # Panics
    ///
    /// Panics if any bit is not 0/1, or on the length conditions of
    /// [`ViterbiDecoder::decode`].
    pub fn decode_hard(&self, bits: &[u8], terminated: bool) -> Vec<u8> {
        let llrs: Vec<f64> = bits
            .iter()
            .map(|&b| {
                assert!(b <= 1, "hard bits must be 0 or 1, got {b}");
                if b == 0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        self.decode(&llrs, terminated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::ConvEncoder;

    fn frame(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        let mut data: Vec<u8> = (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 62) & 1) as u8
            })
            .collect();
        data.extend_from_slice(&[0; 6]);
        data
    }

    fn ideal_llrs(coded: &[u8]) -> Vec<f64> {
        coded.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect()
    }

    #[test]
    fn noiseless_roundtrip() {
        let data = frame(120, 42);
        let coded = ConvEncoder::new().encode(&data);
        assert_eq!(ViterbiDecoder::new().decode(&ideal_llrs(&coded), true), data);
    }

    #[test]
    fn corrects_scattered_bit_flips() {
        let data = frame(200, 7);
        let coded = ConvEncoder::new().encode(&data);
        let mut llrs = ideal_llrs(&coded);
        // Flip well-separated bits: free distance 10 ⇒ isolated flips are
        // always correctable.
        for i in (0..llrs.len()).step_by(41) {
            llrs[i] = -llrs[i];
        }
        assert_eq!(ViterbiDecoder::new().decode(&llrs, true), data);
    }

    #[test]
    fn bridges_scattered_erasures() {
        let data = frame(200, 9);
        let coded = ConvEncoder::new().encode(&data);
        let mut llrs = ideal_llrs(&coded);
        for i in (0..llrs.len()).step_by(13) {
            llrs[i] = 0.0;
        }
        assert_eq!(ViterbiDecoder::new().decode(&llrs, true), data);
    }

    #[test]
    fn erasures_are_cheaper_than_errors() {
        // A burst of E erasures is survivable when a burst of E errors is
        // not: erasures remove information, errors inject wrong information.
        let data = frame(100, 3);
        let coded = ConvEncoder::new().encode(&data);
        let dec = ViterbiDecoder::new();

        let burst = 8;
        let start = 60;

        let mut erased = ideal_llrs(&coded);
        for l in erased.iter_mut().skip(start).take(burst) {
            *l = 0.0;
        }
        assert_eq!(dec.decode(&erased, true), data, "erasure burst of {burst} must decode");

        let mut flipped = ideal_llrs(&coded);
        for l in flipped.iter_mut().skip(start).take(burst) {
            *l = -*l;
        }
        assert_ne!(dec.decode(&flipped, true), data, "error burst of {burst} should break decoding");
    }

    #[test]
    fn soft_confidence_is_respected() {
        // A strongly confident wrong bit next to weakly confident correct
        // bits: the decoder should still recover thanks to accumulated weak
        // evidence.
        let data = frame(64, 11);
        let coded = ConvEncoder::new().encode(&data);
        let mut llrs: Vec<f64> = ideal_llrs(&coded).iter().map(|l| l * 0.4).collect();
        llrs[30] = -2.0 * llrs[30].signum();
        assert_eq!(ViterbiDecoder::new().decode(&llrs, true), data);
    }

    #[test]
    fn unterminated_traceback_works() {
        let mut data = frame(80, 5);
        // Strip tail: frame() appended zeros; replace with live data so the
        // final state is arbitrary.
        let len = data.len();
        data[len - 6..].copy_from_slice(&[1, 0, 1, 1, 0, 1]);
        let coded = ConvEncoder::new().encode(&data);
        let decoded = ViterbiDecoder::new().decode(&ideal_llrs(&coded), false);
        // The last few bits may be unreliable without termination, but the
        // body must match.
        assert_eq!(&decoded[..len - 6], &data[..len - 6]);
    }

    #[test]
    fn hard_decode_matches_soft_on_clean_input() {
        let data = frame(100, 13);
        let coded = ConvEncoder::new().encode(&data);
        let dec = ViterbiDecoder::new();
        assert_eq!(dec.decode_hard(&coded, true), data);
    }

    #[test]
    fn all_erased_frame_decodes_to_some_valid_word() {
        // With zero information every path ties; the decoder must still
        // return a well-formed output (all-zeros wins ties from state 0).
        let llrs = vec![0.0; 120];
        let decoded = ViterbiDecoder::new().decode(&llrs, true);
        assert_eq!(decoded.len(), 60);
    }

    #[test]
    fn decode_into_with_dirty_workspace_matches_owned() {
        let dec = ViterbiDecoder::new();
        let mut ws = ViterbiWorkspace::new();
        let mut out = Vec::new();
        // Dirty the workspace with a longer frame first, then decode a
        // shorter one: leftovers must not leak into the result.
        for (len, seed) in [(300, 21u64), (80, 4), (200, 17)] {
            let data = frame(len, seed);
            let coded = ConvEncoder::new().encode(&data);
            let llrs = ideal_llrs(&coded);
            dec.decode_into(&llrs, true, &mut ws, &mut out);
            assert_eq!(out, dec.decode(&llrs, true));
            assert_eq!(out, data);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        ViterbiDecoder::new().decode(&[], true);
    }

    #[test]
    #[should_panic(expected = "pairs")]
    fn odd_input_panics() {
        ViterbiDecoder::new().decode(&[1.0; 7], true);
    }
}
