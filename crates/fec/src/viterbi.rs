//! Soft-decision Viterbi decoding of the 802.11a convolutional code, with
//! native erasure support (EVD).
//!
//! # LLR convention
//!
//! A soft input `llr[i] > 0` means coded bit `i` is more likely **0**;
//! `llr[i] < 0` means more likely **1**; `llr[i] == 0` is an **erasure** —
//! the bit contributes nothing to any path metric. Erasures arise from
//! three sources that all compose through the same mechanism:
//!
//! 1. de-puncturing (positions the transmitter never sent),
//! 2. CoS silence symbols flagged by the energy detector (paper Eq. 7),
//! 3. any upstream processing that wants to neutralise a bit.
//!
//! This is precisely the paper's erasure Viterbi decoding: "the proposed
//! EVD does not modify the existing Viterbi decoder, but only the
//! calculation of bit metrics" — the add-compare-select kernel below is a
//! textbook Viterbi.
//!
//! # Kernels
//!
//! The add-compare-select recursion has three implementations that emit
//! the same bits (see `docs/KERNELS.md` for the ordering contract):
//!
//! * a scalar reference ([`KernelMode::Scalar`]),
//! * a lane kernel processing [`LANES`] states per op
//!   ([`KernelMode::Lanes`], the default), and
//! * a lockstep batch kernel ([`ViterbiDecoder::decode_lockstep`])
//!   processing the same trellis step of [`LANES`] *frames* per op, with
//!   per-frame fallback for remainder frames.
//!
//! Every owned or workspace entry point funnels into the single
//! [`ViterbiDecoder::decode_to_slices_with`] core, so there is exactly one
//! implementation per kernel and no owned/scalar drift.
//!
//! # Hard decisions
//!
//! [`ViterbiDecoder::decode_hard`] converts hard bits to ±1 LLRs, giving
//! the classical error-only decoder used by the `ablation_evd` experiment.

use crate::conv::{branch_output, next_state, STATES};
use crate::workspace::{SymbolBatch, ViterbiWorkspace};
use cos_dsp::lanes::{kernel_mode, F64xL, KernelMode, LANES};
use std::sync::OnceLock;

/// A soft-decision Viterbi decoder for the 133/171 rate-1/2 code.
///
/// The decoder is stateless between calls; construct once and reuse.
///
/// # Examples
///
/// ```
/// use cos_fec::{ConvEncoder, ViterbiDecoder};
///
/// let mut data = vec![1, 1, 0, 1, 0, 0, 1, 0];
/// data.extend_from_slice(&[0; 6]); // tail
/// let coded = ConvEncoder::new().encode(&data);
/// let mut llrs: Vec<f64> = coded.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect();
/// llrs[3] = 0.0; // erase one coded bit — EVD bridges it
/// llrs[10] = -llrs[10]; // flip another — classical error correction
/// assert_eq!(ViterbiDecoder::new().decode(&llrs, true), data);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ViterbiDecoder {
    _private: (),
}

/// One frame's borrows for [`ViterbiDecoder::decode_lockstep`]: the soft
/// input plus the caller-owned traceback scratch and output slice, both
/// sized `llrs.len() / 2`.
#[derive(Debug)]
pub struct LaneFrame<'a> {
    /// Soft coded bits (pairs `A_t B_t`), even-length and non-empty.
    pub llrs: &'a [f64],
    /// Traceback scratch: one 64-bit predecessor bitset per trellis step.
    /// Only the per-frame fallback path writes it — the lockstep kernel
    /// keeps its survivors lane-major in the [`SymbolBatch`] instead, so
    /// after a batched decode this scratch holds no meaningful data.
    pub prev_lsbs: &'a mut [u64],
    /// Decoded data bits, one per trellis step.
    pub out: &'a mut [u8],
}

/// Butterfly ACS lookup, built once per process: per source state, the
/// ±1 signs (`+1` ⇔ coded 0) of the two coded bits emitted for input 0,
/// as parallel arrays (scalar order plus lane-gathered even/odd groups)
/// so every ACS kernel is pure vectorisable arithmetic.
///
/// Two structural facts of the 133/171 trellis make this one table enough
/// for the whole add-compare-select step:
///
/// * sources `2j` and `2j + 1` both fan out exactly to destinations `j`
///   (input 0) and `j + 32` (input 1), since `dest = (input << 5) | (src >> 1)`;
/// * both generators tap the input bit, so the input-1 coded pair is the
///   complement of the input-0 pair and its branch metric the negation.
#[derive(Debug)]
struct SignTables {
    /// Sign of coded bit A for input 0, per source state.
    sa: [f64; STATES],
    /// Sign of coded bit B for input 0, per source state.
    sb: [f64; STATES],
    /// `sa` gathered over even sources `2j` for destination lanes
    /// `j = LANES·g .. LANES·(g+1)`.
    sa_even: [F64xL; STATES / 2 / LANES],
    /// `sb` gathered over even sources.
    sb_even: [F64xL; STATES / 2 / LANES],
    /// `sa` gathered over odd sources `2j + 1`.
    sa_odd: [F64xL; STATES / 2 / LANES],
    /// `sb` gathered over odd sources.
    sb_odd: [F64xL; STATES / 2 / LANES],
}

/// Per source state, the palette index of its input-0 branch metric
/// among `[la+lb, la−lb, −(la−lb), −(la+lb)]`. Because the signs are
/// ±1 (exact multiplies) and IEEE rounding commutes with negation,
/// selecting from this palette is bit-identical to evaluating
/// `sa·la + sb·lb` — and costs zero arithmetic in the lockstep loop.
///
/// A compile-time constant (the generator polynomials are `const`), so
/// after LLVM unrolls the lockstep butterfly loop every palette pick
/// folds into a register move instead of two dependent table loads.
const TSEL: [u8; STATES] = {
    let mut t = [0u8; STATES];
    let mut src = 0;
    while src < STATES {
        let (a0, b0) = branch_output(src as u8, 0);
        t[src] = match (a0 == 0, b0 == 0) {
            (true, true) => 0,   //  la + lb
            (true, false) => 1,  //  la - lb
            (false, true) => 2,  // -(la - lb)
            (false, false) => 3, // -(la + lb)
        };
        src += 1;
    }
    t
};

fn sign_tables() -> &'static SignTables {
    static TABLE: OnceLock<SignTables> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut sa = [0.0; STATES];
        let mut sb = [0.0; STATES];
        for src in 0..STATES {
            let (a0, b0) = branch_output(src as u8, 0);
            sa[src] = if a0 == 0 { 1.0 } else { -1.0 };
            sb[src] = if b0 == 0 { 1.0 } else { -1.0 };
            // The two invariants the ACS kernel relies on.
            let (a1, b1) = branch_output(src as u8, 1);
            debug_assert_eq!((a1, b1), (a0 ^ 1, b0 ^ 1));
            debug_assert_eq!(next_state(src as u8, 0) as usize, src >> 1);
            debug_assert_eq!(next_state(src as u8, 1) as usize, (src >> 1) | 32);
        }
        let gather = |table: &[f64; STATES], offset: usize| {
            let mut out = [F64xL::splat(0.0); STATES / 2 / LANES];
            for (g, lane) in out.iter_mut().enumerate() {
                for l in 0..LANES {
                    lane.0[l] = table[2 * (LANES * g + l) + offset];
                }
            }
            out
        };
        SignTables {
            sa_even: gather(&sa, 0),
            sb_even: gather(&sb, 0),
            sa_odd: gather(&sa, 1),
            sb_odd: gather(&sb, 1),
            sa,
            sb,
        }
    })
}

/// Validates one frame's decode inputs, panicking with the documented
/// messages on misuse.
fn validate(llrs: &[f64], prev_lsbs: &[u64], out: &[u8]) -> usize {
    assert!(!llrs.is_empty(), "cannot decode an empty frame");
    assert!(llrs.len().is_multiple_of(2), "soft input length {} is not a whole number of (A,B) pairs", llrs.len());
    let steps = llrs.len() / 2;
    assert_eq!(prev_lsbs.len(), steps, "traceback scratch must hold one word per step");
    assert_eq!(out.len(), steps, "output must hold one bit per step");
    steps
}

/// Picks the traceback start state from the final metrics: state 0 for a
/// terminated trellis, otherwise the best final state (last max on ties,
/// matching `Iterator::max_by`).
fn start_state(metric: &[f64; STATES], terminated: bool) -> usize {
    if terminated {
        0
    } else {
        metric
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("metrics are never NaN"))
            .map(|(s, _)| s)
            .expect("STATES > 0")
    }
}

/// Walks the survivor bitsets backwards, emitting one data bit per step.
/// The input bit at step `t` is the top bit of the state the trellis
/// landed in; the predecessor is `((state & 0x1F) << 1) | prev_lsb`.
fn traceback(prev_lsbs: &[u64], mut state: usize, out: &mut [u8]) {
    for t in (0..out.len()).rev() {
        out[t] = (state >> 5) as u8;
        let prev_lsb = ((prev_lsbs[t] >> state) & 1) as usize;
        state = ((state & 0x1F) << 1) | prev_lsb;
    }
}

impl ViterbiDecoder {
    /// Creates a decoder.
    pub fn new() -> Self {
        ViterbiDecoder::default()
    }

    /// Decodes a frame of soft coded bits (pairs `A_t B_t`, so
    /// `llrs.len()` must be even). Returns one data bit per pair.
    ///
    /// If `terminated` is `true` the trellis is traced back from state 0
    /// (the frame ended in six tail zeros); otherwise from the best final
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is odd or zero.
    pub fn decode(&self, llrs: &[f64], terminated: bool) -> Vec<u8> {
        let mut ws = ViterbiWorkspace::new();
        let mut out = Vec::new();
        self.decode_into(llrs, terminated, &mut ws, &mut out);
        out
    }

    /// [`ViterbiDecoder::decode`] writing into caller-owned buffers.
    ///
    /// `ws` holds the traceback scratch and `out` receives the decoded
    /// bits; both are fully overwritten, so a dirty workspace from a
    /// previous frame produces bit-identical output to a fresh one.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is odd or zero.
    pub fn decode_into(
        &self,
        llrs: &[f64],
        terminated: bool,
        ws: &mut ViterbiWorkspace,
        out: &mut Vec<u8>,
    ) {
        assert!(!llrs.is_empty(), "cannot decode an empty frame");
        assert!(llrs.len().is_multiple_of(2), "soft input length {} is not a whole number of (A,B) pairs", llrs.len());
        let steps = llrs.len() / 2;
        ws.prev_lsbs.clear();
        ws.prev_lsbs.resize(steps, 0);
        out.clear();
        out.resize(steps, 0);
        self.decode_to_slices(llrs, terminated, &mut ws.prev_lsbs, out);
    }

    /// [`ViterbiDecoder::decode`] writing into caller-owned slices — the
    /// allocation-free core for fixed-size fields like SIGNAL. Runs on
    /// the process-wide [`kernel_mode`].
    ///
    /// `prev_lsbs` is the traceback scratch and `out` receives the
    /// decoded bits; both must hold exactly `llrs.len() / 2` elements
    /// and are fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is odd or zero, or either slice has the
    /// wrong length.
    pub fn decode_to_slices(
        &self,
        llrs: &[f64],
        terminated: bool,
        prev_lsbs: &mut [u64],
        out: &mut [u8],
    ) {
        self.decode_to_slices_with(llrs, terminated, kernel_mode(), prev_lsbs, out);
    }

    /// [`ViterbiDecoder::decode_to_slices`] with an explicit
    /// [`KernelMode`] — the single ACS core every other entry point
    /// funnels into. Scalar and lane kernels are bit-identical; the
    /// explicit mode exists for differential tests and benchmarks.
    ///
    /// # Panics
    ///
    /// As [`ViterbiDecoder::decode_to_slices`].
    pub fn decode_to_slices_with(
        &self,
        llrs: &[f64],
        terminated: bool,
        mode: KernelMode,
        prev_lsbs: &mut [u64],
        out: &mut [u8],
    ) {
        validate(llrs, prev_lsbs, out);
        let metric = match mode {
            KernelMode::Scalar => acs_scalar(llrs, prev_lsbs),
            KernelMode::Lanes => acs_lanes(llrs, prev_lsbs),
        };
        traceback(prev_lsbs, start_state(&metric, terminated), out);
    }

    /// Decodes several independent frames in lockstep on the process-wide
    /// [`kernel_mode`]: groups of [`LANES`] equal-length frames advance
    /// through the trellis together, [`LANES`] frames' add-compare-select
    /// per op; remainder frames (batch not a multiple of [`LANES`], or
    /// unequal lengths) fall back to the per-frame kernel transparently.
    ///
    /// `batch` is the reusable SoA staging and survivor-mask scratch; at
    /// steady state the call performs no allocations. The slice is
    /// reordered (sorted by frame length) to form lane groups; each
    /// frame's decoded bits land in its own `out` borrow regardless.
    /// Every frame's `out` is bit-identical to
    /// [`ViterbiDecoder::decode_to_slices`] on that frame alone; the
    /// `prev_lsbs` scratch is only written on the per-frame fallback path
    /// (lane groups keep survivors in `batch`).
    ///
    /// # Panics
    ///
    /// Per frame, as [`ViterbiDecoder::decode_to_slices`].
    pub fn decode_lockstep(
        &self,
        frames: &mut [LaneFrame<'_>],
        terminated: bool,
        batch: &mut SymbolBatch,
    ) {
        self.decode_lockstep_with(frames, terminated, kernel_mode(), batch);
    }

    /// [`ViterbiDecoder::decode_lockstep`] with an explicit
    /// [`KernelMode`]. In scalar mode every frame runs the scalar
    /// reference kernel — bit-identical, just not batched.
    ///
    /// # Panics
    ///
    /// Per frame, as [`ViterbiDecoder::decode_to_slices`].
    pub fn decode_lockstep_with(
        &self,
        frames: &mut [LaneFrame<'_>],
        terminated: bool,
        mode: KernelMode,
        batch: &mut SymbolBatch,
    ) {
        for f in frames.iter() {
            validate(f.llrs, f.prev_lsbs, f.out);
        }
        if mode == KernelMode::Scalar {
            for f in frames.iter_mut() {
                self.decode_to_slices_with(f.llrs, terminated, mode, f.prev_lsbs, f.out);
            }
            return;
        }
        // Lane groups need equal step counts; sort by length so equal
        // frames are adjacent (frames are independent, so order does not
        // affect any frame's result).
        frames.sort_by_key(|f| f.llrs.len());
        let mut i = 0;
        while i < frames.len() {
            let len = frames[i].llrs.len();
            let mut j = i + 1;
            while j < frames.len() && frames[j].llrs.len() == len {
                j += 1;
            }
            let run = &mut frames[i..j];
            let mut chunks = run.chunks_exact_mut(LANES);
            for group in chunks.by_ref() {
                acs_lockstep(group, terminated, batch);
            }
            for f in chunks.into_remainder() {
                self.decode_to_slices_with(f.llrs, terminated, mode, f.prev_lsbs, f.out);
            }
            i = j;
        }
    }

    /// Decodes hard bits (0/1) by mapping them to ±1 LLRs — the classical
    /// error-only decoder.
    ///
    /// # Panics
    ///
    /// Panics if any bit is not 0/1, or on the length conditions of
    /// [`ViterbiDecoder::decode`].
    pub fn decode_hard(&self, bits: &[u8], terminated: bool) -> Vec<u8> {
        let mut ws = ViterbiWorkspace::new();
        let mut llrs = Vec::new();
        let mut out = Vec::new();
        self.decode_hard_into(bits, terminated, &mut llrs, &mut ws, &mut out);
        out
    }

    /// [`ViterbiDecoder::decode_hard`] writing into caller-owned buffers:
    /// `llrs` receives the ±1 mapping and the decode funnels through
    /// [`ViterbiDecoder::decode_into`], so the hard path shares the soft
    /// kernels rather than drifting.
    ///
    /// # Panics
    ///
    /// As [`ViterbiDecoder::decode_hard`].
    pub fn decode_hard_into(
        &self,
        bits: &[u8],
        terminated: bool,
        llrs: &mut Vec<f64>,
        ws: &mut ViterbiWorkspace,
        out: &mut Vec<u8>,
    ) {
        llrs.clear();
        llrs.extend(bits.iter().map(|&b| {
            assert!(b <= 1, "hard bits must be 0 or 1, got {b}");
            if b == 0 {
                1.0
            } else {
                -1.0
            }
        }));
        self.decode_into(llrs, terminated, ws, out);
    }
}

const NEG: f64 = f64::NEG_INFINITY;

/// The scalar reference ACS: one state per op. Returns the final metrics.
fn acs_scalar(llrs: &[f64], prev_lsbs: &mut [u64]) -> [f64; STATES] {
    let steps = llrs.len() / 2;
    let tables = sign_tables();
    let (sa, sb) = (&tables.sa, &tables.sb);
    let mut metric = [NEG; STATES];
    metric[0] = 0.0; // encoder starts from the zero state
    let mut next = [NEG; STATES];
    // Track the predecessor implicitly: dest = (input<<5)|(src>>1), so
    // src = ((dest & 0x1F) << 1) | prev_lsb; we store the winning
    // prev_lsb per destination state in a per-step bitset. The winning
    // *input* needs no storage at all — it is `dest >> 5`.
    for t in 0..steps {
        let la = llrs[2 * t];
        let lb = llrs[2 * t + 1];
        let mut lsb_bits = 0u64;
        for j in 0..STATES / 2 {
            let m0 = metric[2 * j];
            let m1 = metric[2 * j + 1];
            // Branch metric of the input-0 edge out of each source.
            let t0 = sa[2 * j] * la + sb[2 * j] * lb;
            let t1 = sa[2 * j + 1] * la + sb[2 * j + 1] * lb;
            // Destination j takes input 0; destination j+32 takes
            // input 1, whose branch metric is the negation. Strict `>`
            // keeps the lower-numbered predecessor on ties, matching
            // the src-ascending strict-improvement scan this butterfly
            // kernel replaced.
            let (a0, a1) = (m0 + t0, m1 + t1);
            let odd_wins_lo = a1 > a0;
            next[j] = if odd_wins_lo { a1 } else { a0 };
            lsb_bits |= (odd_wins_lo as u64) << j;
            let (b0, b1) = (m0 - t0, m1 - t1);
            let odd_wins_hi = b1 > b0;
            next[j + 32] = if odd_wins_hi { b1 } else { b0 };
            lsb_bits |= (odd_wins_hi as u64) << (j + 32);
        }
        prev_lsbs[t] = lsb_bits;
        std::mem::swap(&mut metric, &mut next);
    }
    metric
}

/// The lane ACS: [`LANES`] destination states per op. Each lane evaluates
/// the scalar kernel's expressions for one state in the same order
/// (`s·la + s·lb`, add/sub, strict `>` select), so the output is
/// bit-identical to [`acs_scalar`]. Returns the final metrics.
fn acs_lanes(llrs: &[f64], prev_lsbs: &mut [u64]) -> [f64; STATES] {
    let steps = llrs.len() / 2;
    let tables = sign_tables();
    // The whole metric array as STATES/LANES lane rows passed by value:
    // with the group loop unrolled (constant trip count, constant
    // indices) LLVM keeps every row in a vector register across trellis
    // steps, so the recursion touches memory only for `llrs` reads and
    // survivor-bitset writes.
    let mut m = [F64xL::splat(NEG); STATES / LANES];
    m[0].0[0] = 0.0; // encoder starts from the zero state
    for t in 0..steps {
        let (next, lsb_bits) = lanes_step(tables, llrs[2 * t], llrs[2 * t + 1], &m);
        m = next;
        prev_lsbs[t] = lsb_bits;
    }
    let mut metric = [0.0; STATES];
    for (g, row) in m.iter().enumerate() {
        metric[g * LANES..(g + 1) * LANES].copy_from_slice(&row.0);
    }
    metric
}

/// One trellis step of [`acs_lanes`]: advances the register-resident
/// metric rows (row `g` holds states `LANES·g .. LANES·(g+1)`) and
/// returns the new rows plus the survivor bitset.
#[inline(always)]
fn lanes_step(
    tables: &SignTables,
    la: f64,
    lb: f64,
    m: &[F64xL; STATES / LANES],
) -> ([F64xL; STATES / LANES], u64) {
    const GROUPS: usize = STATES / 2 / LANES;
    let la = F64xL::splat(la);
    let lb = F64xL::splat(lb);
    let mut next = [F64xL::splat(0.0); STATES / LANES];
    let mut lsb_bits = 0u64;
    for g in 0..GROUPS {
        // Destinations j = LANES·g .. LANES·(g+1) read sources 2j and
        // 2j+1, i.e. the deinterleave of metric rows 2g and 2g+1.
        let a = m[2 * g];
        let b = m[2 * g + 1];
        let (m0, m1) = F64xL::deinterleave(a, b);
        let t0 = tables.sa_even[g] * la + tables.sb_even[g] * lb;
        let t1 = tables.sa_odd[g] * la + tables.sb_odd[g] * lb;
        let (lo, lo_mask) = F64xL::max_select(m0 + t0, m1 + t1);
        next[g] = lo;
        lsb_bits |= (lo_mask as u64) << (LANES * g);
        let (hi, hi_mask) = F64xL::max_select(m0 - t0, m1 - t1);
        next[g + GROUPS] = hi;
        lsb_bits |= (hi_mask as u64) << (LANES * g + STATES / 2);
    }
    (next, lsb_bits)
}

/// The lockstep ACS: the same trellis step of [`LANES`] equal-length
/// frames per op, metrics held state-major with one lane per frame (no
/// gathers at all — `metric[2j]` is already a lane row). Stages the lane
/// group's soft bits into `batch`'s SoA buffer so the per-step lane loads
/// are contiguous, then traces every frame back in one fused sweep.
///
/// Two further tricks keep the inner loop lean without changing a bit:
///
/// * branch metrics come from a 4-entry palette `[la+lb, la−lb, −(la−lb),
///   −(la+lb)]` indexed by the compile-time `TSEL` table — ±1 multiplies are exact
///   and IEEE rounding commutes with negation, so each selected value is
///   bitwise the scalar kernel's `sa·la + sb·lb`;
/// * survivor masks are stored lane-major as raw bytes in
///   `batch.mask_rows` (one store per destination state) instead of being
///   bit-scattered into per-frame `u64` rows, and the fused traceback
///   reads every lane's bit out of a step's row — one cache line — while
///   it is resident, one backward sweep for the whole group.
fn acs_lockstep(group: &mut [LaneFrame<'_>], terminated: bool, batch: &mut SymbolBatch) {
    debug_assert_eq!(group.len(), LANES);
    let steps = group[0].llrs.len() / 2;
    let soa = &mut batch.soa_llrs;
    if soa.len() < steps * 2 * LANES {
        soa.resize(steps * 2 * LANES, 0.0);
    }
    // Transpose lane-major: one linear sweep of the SoA buffer (each
    // cache line written once, all lanes while it is resident) instead of
    // a per-frame scatter that walks the whole buffer once per lane.
    let llrs: [&[f64]; LANES] = std::array::from_fn(|l| &group[l].llrs[..steps * 2]);
    for (i, dst) in soa[..steps * 2 * LANES].chunks_exact_mut(LANES).enumerate() {
        for (l, src) in llrs.iter().enumerate() {
            dst[l] = src[i];
        }
    }
    let masks = &mut batch.mask_rows;
    // Grow-only, no refill: every byte of the first `steps` rows is
    // stored by `lockstep_step` before traceback reads it.
    if masks.len() < steps * STATES {
        masks.resize(steps * STATES, 0);
    }
    let mut buf_a = [F64xL::splat(NEG); STATES];
    buf_a[0] = F64xL::splat(0.0);
    let mut buf_b = [F64xL::splat(NEG); STATES];
    // The same straight-line ping-pong as [`acs_lanes`]: these buffers
    // are LANES× bigger, so a by-value swap would copy 8 KiB per step.
    let mut t = 0;
    while t + 2 <= steps {
        lockstep_step(soa, masks, t, &buf_a, &mut buf_b);
        lockstep_step(soa, masks, t + 1, &buf_b, &mut buf_a);
        t += 2;
    }
    let metric = if t < steps {
        lockstep_step(soa, masks, t, &buf_a, &mut buf_b);
        &buf_b
    } else {
        &buf_a
    };
    // Traceback, all lanes fused into one backward sweep: each step's
    // mask row is a single cache line, so reading every lane's bit while
    // it is resident costs one sweep of the rows instead of eight.
    let mut states = [0usize; LANES];
    for (l, state) in states.iter_mut().enumerate() {
        let mut col = [0.0; STATES];
        for (s, slot) in col.iter_mut().enumerate() {
            *slot = metric[s].0[l];
        }
        *state = start_state(&col, terminated);
    }
    for t in (0..steps).rev() {
        let row: &[u8; STATES] = (&masks[t * STATES..(t + 1) * STATES]).try_into().unwrap();
        for (l, (f, state)) in group.iter_mut().zip(states.iter_mut()).enumerate() {
            f.out[t] = (*state >> 5) as u8;
            let prev_lsb = ((row[*state] >> l) & 1) as usize;
            *state = ((*state & 0x1F) << 1) | prev_lsb;
        }
    }
}

/// One trellis step of [`acs_lockstep`]: reads step `t`'s lane rows from
/// `soa`, advances `metric` into `next` and stores the step's winner-mask
/// row into `masks`.
#[inline(always)]
fn lockstep_step(
    soa: &[f64],
    masks: &mut [u8],
    t: usize,
    metric: &[F64xL; STATES],
    next: &mut [F64xL; STATES],
) {
    let la = F64xL::load(&soa[2 * t * LANES..]);
    let lb = F64xL::load(&soa[(2 * t + 1) * LANES..]);
    let sum = la + lb;
    let diff = la - lb;
    let palette = [sum, diff, -diff, -sum];
    // Fixed-size row reference and `& 3` palette indices: both make every
    // bound in the hot loop provable, so no per-state branch survives.
    let row: &mut [u8; STATES] = (&mut masks[t * STATES..(t + 1) * STATES]).try_into().unwrap();
    // Fully unrolled over the 32 butterflies with literal `j`: the
    // `TSEL` lookups become compile-time constants, so each palette pick
    // folds to one of four register values instead of two dependent
    // loads per butterfly. LLVM does not unroll this far on its own.
    macro_rules! butterfly {
        ($($j:literal)+) => {$(
            let m0 = metric[2 * $j];
            let m1 = metric[2 * $j + 1];
            let t0 = palette[(TSEL[2 * $j] & 3) as usize];
            let t1 = palette[(TSEL[2 * $j + 1] & 3) as usize];
            let (lo, lo_mask) = F64xL::max_select(m0 + t0, m1 + t1);
            next[$j] = lo;
            row[$j] = lo_mask;
            let (hi, hi_mask) = F64xL::max_select(m0 - t0, m1 - t1);
            next[$j + STATES / 2] = hi;
            row[$j + STATES / 2] = hi_mask;
        )+};
    }
    const { assert!(STATES / 2 == 32, "the butterfly unroll covers exactly STATES / 2 entries") };
    butterfly!(0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15);
    butterfly!(16 17 18 19 20 21 22 23 24 25 26 27 28 29 30 31);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::ConvEncoder;

    fn frame(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        let mut data: Vec<u8> = (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 62) & 1) as u8
            })
            .collect();
        data.extend_from_slice(&[0; 6]);
        data
    }

    fn ideal_llrs(coded: &[u8]) -> Vec<f64> {
        coded.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect()
    }

    /// Pseudo-random soft values including erasures and sign flips.
    fn noisy_llrs(coded: &[u8], seed: u64) -> Vec<f64> {
        let mut x = seed;
        coded
            .iter()
            .map(|&b| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let mag = ((x >> 32) & 0xFFFF) as f64 / 65536.0;
                match x % 13 {
                    0 => 0.0,
                    1 => if b == 0 { -mag } else { mag },
                    _ => if b == 0 { mag } else { -mag },
                }
            })
            .collect()
    }

    #[test]
    fn noiseless_roundtrip() {
        let data = frame(120, 42);
        let coded = ConvEncoder::new().encode(&data);
        assert_eq!(ViterbiDecoder::new().decode(&ideal_llrs(&coded), true), data);
    }

    #[test]
    fn corrects_scattered_bit_flips() {
        let data = frame(200, 7);
        let coded = ConvEncoder::new().encode(&data);
        let mut llrs = ideal_llrs(&coded);
        // Flip well-separated bits: free distance 10 ⇒ isolated flips are
        // always correctable.
        for i in (0..llrs.len()).step_by(41) {
            llrs[i] = -llrs[i];
        }
        assert_eq!(ViterbiDecoder::new().decode(&llrs, true), data);
    }

    #[test]
    fn bridges_scattered_erasures() {
        let data = frame(200, 9);
        let coded = ConvEncoder::new().encode(&data);
        let mut llrs = ideal_llrs(&coded);
        for i in (0..llrs.len()).step_by(13) {
            llrs[i] = 0.0;
        }
        assert_eq!(ViterbiDecoder::new().decode(&llrs, true), data);
    }

    #[test]
    fn erasures_are_cheaper_than_errors() {
        // A burst of E erasures is survivable when a burst of E errors is
        // not: erasures remove information, errors inject wrong information.
        let data = frame(100, 3);
        let coded = ConvEncoder::new().encode(&data);
        let dec = ViterbiDecoder::new();

        let burst = 8;
        let start = 60;

        let mut erased = ideal_llrs(&coded);
        for l in erased.iter_mut().skip(start).take(burst) {
            *l = 0.0;
        }
        assert_eq!(dec.decode(&erased, true), data, "erasure burst of {burst} must decode");

        let mut flipped = ideal_llrs(&coded);
        for l in flipped.iter_mut().skip(start).take(burst) {
            *l = -*l;
        }
        assert_ne!(dec.decode(&flipped, true), data, "error burst of {burst} should break decoding");
    }

    #[test]
    fn soft_confidence_is_respected() {
        // A strongly confident wrong bit next to weakly confident correct
        // bits: the decoder should still recover thanks to accumulated weak
        // evidence.
        let data = frame(64, 11);
        let coded = ConvEncoder::new().encode(&data);
        let mut llrs: Vec<f64> = ideal_llrs(&coded).iter().map(|l| l * 0.4).collect();
        llrs[30] = -2.0 * llrs[30].signum();
        assert_eq!(ViterbiDecoder::new().decode(&llrs, true), data);
    }

    #[test]
    fn unterminated_traceback_works() {
        let mut data = frame(80, 5);
        // Strip tail: frame() appended zeros; replace with live data so the
        // final state is arbitrary.
        let len = data.len();
        data[len - 6..].copy_from_slice(&[1, 0, 1, 1, 0, 1]);
        let coded = ConvEncoder::new().encode(&data);
        let decoded = ViterbiDecoder::new().decode(&ideal_llrs(&coded), false);
        // The last few bits may be unreliable without termination, but the
        // body must match.
        assert_eq!(&decoded[..len - 6], &data[..len - 6]);
    }

    #[test]
    fn hard_decode_matches_soft_on_clean_input() {
        let data = frame(100, 13);
        let coded = ConvEncoder::new().encode(&data);
        let dec = ViterbiDecoder::new();
        assert_eq!(dec.decode_hard(&coded, true), data);
    }

    #[test]
    fn all_erased_frame_decodes_to_some_valid_word() {
        // With zero information every path ties; the decoder must still
        // return a well-formed output (all-zeros wins ties from state 0).
        let llrs = vec![0.0; 120];
        let decoded = ViterbiDecoder::new().decode(&llrs, true);
        assert_eq!(decoded.len(), 60);
    }

    #[test]
    fn decode_into_with_dirty_workspace_matches_owned() {
        let dec = ViterbiDecoder::new();
        let mut ws = ViterbiWorkspace::new();
        let mut out = Vec::new();
        // Dirty the workspace with a longer frame first, then decode a
        // shorter one: leftovers must not leak into the result.
        for (len, seed) in [(300, 21u64), (80, 4), (200, 17)] {
            let data = frame(len, seed);
            let coded = ConvEncoder::new().encode(&data);
            let llrs = ideal_llrs(&coded);
            dec.decode_into(&llrs, true, &mut ws, &mut out);
            assert_eq!(out, dec.decode(&llrs, true));
            assert_eq!(out, data);
        }
    }

    #[test]
    fn lane_kernel_is_bit_identical_to_scalar() {
        let dec = ViterbiDecoder::new();
        for (len, seed) in [(24usize, 1u64), (100, 2), (333, 3), (1000, 4)] {
            let data = frame(len, seed);
            let coded = ConvEncoder::new().encode(&data);
            for terminated in [true, false] {
                for llrs in [ideal_llrs(&coded), noisy_llrs(&coded, seed ^ 0xABCD)] {
                    let steps = llrs.len() / 2;
                    let (mut ps, mut pl) = (vec![0u64; steps], vec![0u64; steps]);
                    let (mut os, mut ol) = (vec![0u8; steps], vec![0u8; steps]);
                    dec.decode_to_slices_with(&llrs, terminated, KernelMode::Scalar, &mut ps, &mut os);
                    dec.decode_to_slices_with(&llrs, terminated, KernelMode::Lanes, &mut pl, &mut ol);
                    assert_eq!(ps, pl, "survivor bitsets differ len={len} term={terminated}");
                    assert_eq!(os, ol, "decoded bits differ len={len} term={terminated}");
                }
            }
        }
    }

    #[test]
    fn lockstep_matches_per_frame_including_remainders() {
        let dec = ViterbiDecoder::new();
        let mut batch = SymbolBatch::new();
        // Mixed lengths, batch sizes 1..=9: full lanes, remainders and
        // unequal-length groups all covered.
        for batch_size in 1..=9usize {
            let frames_data: Vec<(Vec<f64>, usize)> = (0..batch_size)
                .map(|k| {
                    let len = 40 + 20 * (k % 3);
                    let data = frame(len, k as u64 + 99);
                    let coded = ConvEncoder::new().encode(&data);
                    let llrs = noisy_llrs(&coded, k as u64 * 7 + 1);
                    let steps = llrs.len() / 2;
                    (llrs, steps)
                })
                .collect();
            let mut prevs: Vec<Vec<u64>> = frames_data.iter().map(|(_, s)| vec![0; *s]).collect();
            let mut outs: Vec<Vec<u8>> = frames_data.iter().map(|(_, s)| vec![0; *s]).collect();
            {
                let mut lane_frames: Vec<LaneFrame<'_>> = frames_data
                    .iter()
                    .zip(prevs.iter_mut().zip(outs.iter_mut()))
                    .map(|((llrs, _), (p, o))| LaneFrame { llrs, prev_lsbs: p, out: o })
                    .collect();
                dec.decode_lockstep(&mut lane_frames, true, &mut batch);
            }
            // Only the decoded bits are contracted to match — lane groups
            // keep their survivors in the SymbolBatch, not in prev_lsbs.
            for (k, (llrs, steps)) in frames_data.iter().enumerate() {
                let mut p = vec![0u64; *steps];
                let mut o = vec![0u8; *steps];
                dec.decode_to_slices_with(llrs, true, KernelMode::Scalar, &mut p, &mut o);
                assert_eq!(outs[k], o, "batch={batch_size} frame={k} bits");
            }
        }
    }

    #[test]
    fn decode_hard_into_matches_owned() {
        let dec = ViterbiDecoder::new();
        let data = frame(150, 31);
        let coded = ConvEncoder::new().encode(&data);
        let mut ws = ViterbiWorkspace::new();
        let mut llrs = Vec::new();
        let mut out = Vec::new();
        dec.decode_hard_into(&coded, true, &mut llrs, &mut ws, &mut out);
        assert_eq!(out, dec.decode_hard(&coded, true));
        assert_eq!(out, data);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        ViterbiDecoder::new().decode(&[], true);
    }

    #[test]
    #[should_panic(expected = "pairs")]
    fn odd_input_panics() {
        ViterbiDecoder::new().decode(&[1.0; 7], true);
    }

    #[test]
    #[should_panic(expected = "pairs")]
    fn lockstep_rejects_odd_frames() {
        let llrs = [1.0; 7];
        let mut p = [0u64; 3];
        let mut o = [0u8; 3];
        let mut frames = [LaneFrame { llrs: &llrs, prev_lsbs: &mut p, out: &mut o }];
        ViterbiDecoder::new().decode_lockstep(&mut frames, true, &mut SymbolBatch::new());
    }
}
