//! Soft-decision Viterbi decoding of the 802.11a convolutional code, with
//! native erasure support (EVD).
//!
//! # LLR convention
//!
//! A soft input `llr[i] > 0` means coded bit `i` is more likely **0**;
//! `llr[i] < 0` means more likely **1**; `llr[i] == 0` is an **erasure** —
//! the bit contributes nothing to any path metric. Erasures arise from
//! three sources that all compose through the same mechanism:
//!
//! 1. de-puncturing (positions the transmitter never sent),
//! 2. CoS silence symbols flagged by the energy detector (paper Eq. 7),
//! 3. any upstream processing that wants to neutralise a bit.
//!
//! This is precisely the paper's erasure Viterbi decoding: "the proposed
//! EVD does not modify the existing Viterbi decoder, but only the
//! calculation of bit metrics" — the add-compare-select kernel below is a
//! textbook Viterbi.
//!
//! # Hard decisions
//!
//! [`ViterbiDecoder::decode_hard`] converts hard bits to ±1 LLRs, giving
//! the classical error-only decoder used by the `ablation_evd` experiment.

use crate::conv::{branch_output, next_state, STATES};

/// A soft-decision Viterbi decoder for the 133/171 rate-1/2 code.
///
/// The decoder is stateless between calls; construct once and reuse.
///
/// # Examples
///
/// ```
/// use cos_fec::{ConvEncoder, ViterbiDecoder};
///
/// let mut data = vec![1, 1, 0, 1, 0, 0, 1, 0];
/// data.extend_from_slice(&[0; 6]); // tail
/// let coded = ConvEncoder::new().encode(&data);
/// let mut llrs: Vec<f64> = coded.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect();
/// llrs[3] = 0.0; // erase one coded bit — EVD bridges it
/// llrs[10] = -llrs[10]; // flip another — classical error correction
/// assert_eq!(ViterbiDecoder::new().decode(&llrs, true), data);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ViterbiDecoder {
    _private: (),
}

/// Branch-metric lookup: for each state and input bit, the pair of expected
/// coded bits as ±1 values (`+1` for coded 0, `-1` for coded 1).
fn branch_signs() -> [[(f64, f64); 2]; STATES] {
    let mut table = [[(0.0, 0.0); 2]; STATES];
    for (state, row) in table.iter_mut().enumerate() {
        for (input, slot) in row.iter_mut().enumerate() {
            let (a, b) = branch_output(state as u8, input as u8);
            let sign = |bit: u8| if bit == 0 { 1.0 } else { -1.0 };
            *slot = (sign(a), sign(b));
        }
    }
    table
}

impl ViterbiDecoder {
    /// Creates a decoder.
    pub fn new() -> Self {
        ViterbiDecoder::default()
    }

    /// Decodes a frame of soft coded bits (pairs `A_t B_t`, so
    /// `llrs.len()` must be even). Returns one data bit per pair.
    ///
    /// If `terminated` is `true` the trellis is traced back from state 0
    /// (the frame ended in six tail zeros); otherwise from the best final
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is odd or zero.
    pub fn decode(&self, llrs: &[f64], terminated: bool) -> Vec<u8> {
        assert!(!llrs.is_empty(), "cannot decode an empty frame");
        assert!(llrs.len().is_multiple_of(2), "soft input length {} is not a whole number of (A,B) pairs", llrs.len());
        let steps = llrs.len() / 2;
        let signs = branch_signs();

        const NEG: f64 = f64::NEG_INFINITY;
        let mut metric = [NEG; STATES];
        metric[0] = 0.0; // encoder starts from the zero state
        let mut next = [NEG; STATES];
        // survivors[t] packs, per destination state, the input bit that won.
        let mut survivors: Vec<u64> = Vec::with_capacity(steps);
        // Track the predecessor implicitly: dest = (input<<5)|(src>>1), so
        // src = ((dest & 0x1F) << 1) | prev_lsb; we store the winning
        // prev_lsb per destination state in a second bitset.
        let mut prev_lsbs: Vec<u64> = Vec::with_capacity(steps);

        for t in 0..steps {
            let la = llrs[2 * t];
            let lb = llrs[2 * t + 1];
            next.fill(NEG);
            let mut surv_bits = 0u64;
            let mut lsb_bits = 0u64;
            #[allow(clippy::needless_range_loop)] // src/input double loop reads several tables
            for src in 0..STATES {
                let m = metric[src];
                if m == NEG {
                    continue;
                }
                for input in 0..2 {
                    let (sa, sb) = signs[src][input];
                    let cand = m + sa * la + sb * lb;
                    let dest = next_state(src as u8, input as u8) as usize;
                    if cand > next[dest] {
                        next[dest] = cand;
                        if input == 1 {
                            surv_bits |= 1 << dest;
                        } else {
                            surv_bits &= !(1 << dest);
                        }
                        if src & 1 == 1 {
                            lsb_bits |= 1 << dest;
                        } else {
                            lsb_bits &= !(1 << dest);
                        }
                    }
                }
            }
            survivors.push(surv_bits);
            prev_lsbs.push(lsb_bits);
            metric = next;
        }

        // Choose the traceback start state.
        let mut state = if terminated {
            0usize
        } else {
            metric
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("metrics are never NaN"))
                .map(|(s, _)| s)
                .expect("STATES > 0")
        };

        // Trace back.
        let mut decoded = vec![0u8; steps];
        for t in (0..steps).rev() {
            let input = ((survivors[t] >> state) & 1) as u8;
            let prev_lsb = ((prev_lsbs[t] >> state) & 1) as usize;
            decoded[t] = input;
            state = ((state & 0x1F) << 1) | prev_lsb;
        }
        decoded
    }

    /// Decodes hard bits (0/1) by mapping them to ±1 LLRs — the classical
    /// error-only decoder.
    ///
    /// # Panics
    ///
    /// Panics if any bit is not 0/1, or on the length conditions of
    /// [`ViterbiDecoder::decode`].
    pub fn decode_hard(&self, bits: &[u8], terminated: bool) -> Vec<u8> {
        let llrs: Vec<f64> = bits
            .iter()
            .map(|&b| {
                assert!(b <= 1, "hard bits must be 0 or 1, got {b}");
                if b == 0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        self.decode(&llrs, terminated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::ConvEncoder;

    fn frame(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        let mut data: Vec<u8> = (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 62) & 1) as u8
            })
            .collect();
        data.extend_from_slice(&[0; 6]);
        data
    }

    fn ideal_llrs(coded: &[u8]) -> Vec<f64> {
        coded.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect()
    }

    #[test]
    fn noiseless_roundtrip() {
        let data = frame(120, 42);
        let coded = ConvEncoder::new().encode(&data);
        assert_eq!(ViterbiDecoder::new().decode(&ideal_llrs(&coded), true), data);
    }

    #[test]
    fn corrects_scattered_bit_flips() {
        let data = frame(200, 7);
        let coded = ConvEncoder::new().encode(&data);
        let mut llrs = ideal_llrs(&coded);
        // Flip well-separated bits: free distance 10 ⇒ isolated flips are
        // always correctable.
        for i in (0..llrs.len()).step_by(41) {
            llrs[i] = -llrs[i];
        }
        assert_eq!(ViterbiDecoder::new().decode(&llrs, true), data);
    }

    #[test]
    fn bridges_scattered_erasures() {
        let data = frame(200, 9);
        let coded = ConvEncoder::new().encode(&data);
        let mut llrs = ideal_llrs(&coded);
        for i in (0..llrs.len()).step_by(13) {
            llrs[i] = 0.0;
        }
        assert_eq!(ViterbiDecoder::new().decode(&llrs, true), data);
    }

    #[test]
    fn erasures_are_cheaper_than_errors() {
        // A burst of E erasures is survivable when a burst of E errors is
        // not: erasures remove information, errors inject wrong information.
        let data = frame(100, 3);
        let coded = ConvEncoder::new().encode(&data);
        let dec = ViterbiDecoder::new();

        let burst = 8;
        let start = 60;

        let mut erased = ideal_llrs(&coded);
        for l in erased.iter_mut().skip(start).take(burst) {
            *l = 0.0;
        }
        assert_eq!(dec.decode(&erased, true), data, "erasure burst of {burst} must decode");

        let mut flipped = ideal_llrs(&coded);
        for l in flipped.iter_mut().skip(start).take(burst) {
            *l = -*l;
        }
        assert_ne!(dec.decode(&flipped, true), data, "error burst of {burst} should break decoding");
    }

    #[test]
    fn soft_confidence_is_respected() {
        // A strongly confident wrong bit next to weakly confident correct
        // bits: the decoder should still recover thanks to accumulated weak
        // evidence.
        let data = frame(64, 11);
        let coded = ConvEncoder::new().encode(&data);
        let mut llrs: Vec<f64> = ideal_llrs(&coded).iter().map(|l| l * 0.4).collect();
        llrs[30] = -2.0 * llrs[30].signum();
        assert_eq!(ViterbiDecoder::new().decode(&llrs, true), data);
    }

    #[test]
    fn unterminated_traceback_works() {
        let mut data = frame(80, 5);
        // Strip tail: frame() appended zeros; replace with live data so the
        // final state is arbitrary.
        let len = data.len();
        data[len - 6..].copy_from_slice(&[1, 0, 1, 1, 0, 1]);
        let coded = ConvEncoder::new().encode(&data);
        let decoded = ViterbiDecoder::new().decode(&ideal_llrs(&coded), false);
        // The last few bits may be unreliable without termination, but the
        // body must match.
        assert_eq!(&decoded[..len - 6], &data[..len - 6]);
    }

    #[test]
    fn hard_decode_matches_soft_on_clean_input() {
        let data = frame(100, 13);
        let coded = ConvEncoder::new().encode(&data);
        let dec = ViterbiDecoder::new();
        assert_eq!(dec.decode_hard(&coded, true), data);
    }

    #[test]
    fn all_erased_frame_decodes_to_some_valid_word() {
        // With zero information every path ties; the decoder must still
        // return a well-formed output (all-zeros wins ties from state 0).
        let llrs = vec![0.0; 120];
        let decoded = ViterbiDecoder::new().decode(&llrs, true);
        assert_eq!(decoded.len(), 60);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        ViterbiDecoder::new().decode(&[], true);
    }

    #[test]
    #[should_panic(expected = "pairs")]
    fn odd_input_panics() {
        ViterbiDecoder::new().decode(&[1.0; 7], true);
    }
}
