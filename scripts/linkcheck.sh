#!/usr/bin/env bash
# Docs link check (scripts/check.sh gate): every relative markdown link
# target and every backticked *.md path mentioned in the top-level and
# docs/ markdown files must exist on disk. Catches renamed/deleted docs
# and stale cross-references; external (http/mailto) links are skipped.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

for f in *.md docs/*.md; do
  [ -e "$f" ] || continue
  dir=$(dirname "$f")

  # Inline markdown links: [text](target), minus URL schemes/anchors.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "broken link in $f: ($target)"
      fail=1
    fi
  done < <(grep -o ']([^)]*)' "$f" | sed 's/^](//; s/)$//')

  # Backticked path references ending in .md, e.g. `docs/ADAPTATION.md`.
  # Accept a path that resolves relative to the referencing file OR to
  # the repo root (prose in docs/ often uses root-relative paths).
  # ROADMAP.md and ISSUE.md cite files from the external exemplar repos
  # under /root/related/ and are driver-curated, so they are exempt.
  case "$f" in ROADMAP.md | ISSUE.md) continue ;; esac
  while IFS= read -r path; do
    case "$path" in
      *'*'* | *' '*) continue ;; # globs / prose, not paths
    esac
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "broken reference in $f: \`$path\`"
      fail=1
    fi
  done < <(grep -o '`[^`]*\.md`' "$f" | sed 's/^`//; s/`$//')
done

if [ "$fail" -ne 0 ]; then
  echo "linkcheck FAILED"
  exit 1
fi
echo "linkcheck OK"
