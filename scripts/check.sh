#!/usr/bin/env bash
# The local pre-merge gate. A clean run of this script is the bar every
# change must meet (see README.md "Tests and benches").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q (root integration tests — tier-1)"
cargo test -q

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== cargo test --doc --workspace"
cargo test -q --doc --workspace

echo "== cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps

echo "== cargo clippy --workspace (warnings are errors)"
cargo clippy -q --workspace --all-targets -- -D warnings

echo "== robustness_soak --quick (fault-matrix smoke: every impairment and mode transition, fixed seeds)"
cargo run -q --release -p cos-experiments --bin robustness_soak -- --quick

echo "== alloc gate (workspace pipeline must stay ≥10x leaner than the owned path, or ≥1.5x faster)"
cargo run -q --release -p cos-bench --bin alloc_gate -- --check

echo "== golden vectors (frozen waveforms + decodes for all 8 rates; any bit/sample drift fails)"
cargo test -q --release --test golden_vectors

echo "== golden vectors under COS_KERNELS=scalar (the lane/scalar bit-identity contract, end to end)"
COS_KERNELS=scalar cargo test -q --release --test golden_vectors

echo "== channel kernel differential under both COS_KERNELS (lane AWGN/conv/overlap + batched transmit bit-identical to scalar)"
COS_KERNELS=scalar cargo test -q --release -p cos-channel --test kernel_differential
COS_KERNELS=lanes cargo test -q --release -p cos-channel --test kernel_differential

echo "== session_storm --smoke --kernels both (1000+ pooled sessions: engine outcomes byte-identical at 1/4/8 threads AND across scalar/lane kernels)"
cargo run -q --release -p cos-bench --bin session_storm -- --smoke --kernels both

echo "== adaptation_storm --smoke --kernels both (closed-loop controller: adaptive outcomes byte-identical at 1/4/8 threads AND across kernels + drift-duel gate)"
cargo run -q --release -p cos-bench --bin adaptation_storm -- --smoke --kernels both

echo "== service_storm --smoke (async service chaos: zero lost jobs under stalls/poison/overflow, digests identical at 1/4/8 threads, journal replays byte-exactly)"
cargo run -q --release -p cos-bench --bin service_storm -- --smoke

echo "== mesh_storm --smoke (1024+ churning mesh stations: digests identical at 1/4/8 threads + coordination duel gate)"
cargo run -q --release -p cos-bench --bin mesh_storm -- --smoke

echo "== docs link check (relative links and backticked *.md references must resolve)"
scripts/linkcheck.sh

echo "== CSV determinism (buffer reuse must not change a single byte of the committed results)"
cargo run -q --release -p cos-experiments --bin fig02_snr_gap > /dev/null
cargo run -q --release -p cos-experiments --bin fig05_evm_positions > /dev/null
git diff --exit-code -- results/

echo "== fig08_mesh CSV byte-identity at COS_THREADS=1/4/8 (the mesh determinism contract, end to end)"
for t in 1 4 8; do
    COS_THREADS=$t cargo run -q --release -p cos-experiments --bin fig08_mesh > /dev/null
    git diff --exit-code -- results/
done

echo "ALL CHECKS PASSED"
